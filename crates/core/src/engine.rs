//! The functional execution engine: SMARTS's fast-forwarding substrate.

use smarts_isa::{Cpu, ExecRecord, Memory, Program};
use smarts_uarch::{TraceSource, WarmState};
use smarts_workloads::LoadedBenchmark;

/// Owns the architectural state of one benchmark execution and exposes
/// the three ways SMARTS consumes instructions:
///
/// * [`FunctionalEngine::fast_forward`] — plain functional simulation
///   (architectural state only),
/// * [`FunctionalEngine::fast_forward_warming`] — functional simulation
///   plus functional warming of a [`WarmState`],
/// * the [`TraceSource`] impl — feeding the detailed pipeline, which
///   performs its own (timed) updates of the warm state.
///
/// `position` counts instructions consumed from the dynamic stream in any
/// of the three modes, so the sampling driver can align sampling units on
/// absolute stream offsets.
#[derive(Debug, Clone)]
pub struct FunctionalEngine {
    cpu: Cpu,
    memory: Memory,
    program: Program,
}

/// A resumable snapshot of an engine's architectural state.
///
/// Cloning is cheap: memory pages are shared copy-on-write, so a snapshot
/// costs O(pages) reference bumps. Used by the checkpoint library to jump
/// straight to a sampling unit without fast-forwarding.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    cpu: Cpu,
    memory: Memory,
}

impl FunctionalEngine {
    /// Starts an engine at the entry point of a loaded benchmark.
    pub fn new(loaded: LoadedBenchmark) -> Self {
        FunctionalEngine {
            cpu: Cpu::new(),
            memory: loaded.memory,
            program: loaded.program,
        }
    }

    /// Captures the current architectural state.
    pub fn snapshot(&self) -> EngineSnapshot {
        EngineSnapshot {
            cpu: self.cpu.clone(),
            memory: self.memory.clone(),
        }
    }

    /// Resumes an engine from a snapshot of the same program.
    pub fn from_snapshot(program: Program, snapshot: EngineSnapshot) -> Self {
        FunctionalEngine {
            cpu: snapshot.cpu,
            memory: snapshot.memory,
            program,
        }
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Instructions consumed from the dynamic stream so far.
    pub fn position(&self) -> u64 {
        self.cpu.retired()
    }

    /// Whether the program has executed its `halt`.
    pub fn finished(&self) -> bool {
        self.cpu.halted()
    }

    /// Read-only access to the architectural CPU state.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Functionally executes until `position() >= target` (or the program
    /// halts), updating architectural state only. Returns the number of
    /// instructions executed.
    pub fn fast_forward(&mut self, target: u64) -> u64 {
        // The budget is computed once and the halt flag is the block
        // loop's condition, so nothing per-instruction re-reads `target`.
        let before = self.cpu.retired();
        let remaining = target.saturating_sub(before);
        let _ = self
            .cpu
            .step_block(&self.program, &mut self.memory, remaining, |_| {});
        self.cpu.retired() - before
    }

    /// Functionally executes until `position() >= target` (or halt),
    /// applying functional warming to `warm` for every instruction.
    /// Returns the number of instructions executed.
    ///
    /// Records are buffered and applied in [`WarmState::warm_batch`]
    /// flushes, which warm in strict stream order (bit-identical to
    /// per-record warming). When the warm state's batch pre-touch is
    /// enabled, each flush first pre-touches its data accesses' L2 set
    /// runs read-only so a host with memory-level parallelism can
    /// overlap the fills that otherwise serialize on D-side-heavy
    /// streams (pointer chasing).
    pub fn fast_forward_warming(&mut self, target: u64, warm: &mut WarmState) -> u64 {
        // Sink flush granularity: big enough to give the pre-touch pass
        // fills to overlap, small enough that the record buffer
        // (24 B each) stays in the host L1.
        const BATCH: usize = 64;
        let before = self.cpu.retired();
        let remaining = target.saturating_sub(before);
        let mut batch: Vec<ExecRecord> = Vec::with_capacity(BATCH);
        let _ = self
            .cpu
            .step_block(&self.program, &mut self.memory, remaining, |rec| {
                batch.push(*rec);
                if batch.len() == BATCH {
                    warm.warm_batch(&batch);
                    batch.clear();
                }
            });
        warm.warm_batch(&batch);
        self.cpu.retired() - before
    }
}

impl EngineSnapshot {
    /// Assembles a snapshot from decoded parts (the checkpoint-store
    /// load path).
    pub fn from_parts(cpu: Cpu, memory: Memory) -> Self {
        EngineSnapshot { cpu, memory }
    }

    /// The architectural CPU state.
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// The architectural memory state.
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Bytes of memory backing store currently allocated to this
    /// snapshot, with no copy-on-write sharing discounted.
    pub fn memory_resident_bytes(&self) -> usize {
        self.memory.resident_bytes()
    }

    /// Bytes of memory backing store not already counted in `seen` (page
    /// identities accumulated across snapshots) — see
    /// [`Memory::resident_bytes_dedup`].
    pub fn memory_resident_bytes_dedup(
        &self,
        seen: &mut std::collections::HashSet<usize>,
    ) -> usize {
        self.memory.resident_bytes_dedup(seen)
    }
}

impl TraceSource for FunctionalEngine {
    fn next_record(&mut self) -> Option<ExecRecord> {
        if self.cpu.halted() {
            return None;
        }
        self.cpu.step(&self.program, &mut self.memory).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_uarch::MachineConfig;
    use smarts_workloads::find;

    fn tiny() -> LoadedBenchmark {
        find("loopy-1").unwrap().scaled(0.01).load()
    }

    #[test]
    fn fast_forward_advances_to_target() {
        let mut engine = FunctionalEngine::new(tiny());
        let executed = engine.fast_forward(1000);
        assert_eq!(executed, 1000);
        assert_eq!(engine.position(), 1000);
        assert!(!engine.finished());
    }

    #[test]
    fn fast_forward_stops_at_halt() {
        let mut engine = FunctionalEngine::new(tiny());
        engine.fast_forward(u64::MAX - 1);
        assert!(engine.finished());
        let at_halt = engine.position();
        assert_eq!(engine.fast_forward(u64::MAX - 1), 0);
        assert_eq!(engine.position(), at_halt);
    }

    #[test]
    fn warming_mode_advances_state_identically() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let mut plain = FunctionalEngine::new(tiny());
        let mut warming = FunctionalEngine::new(tiny());
        plain.fast_forward(5000);
        warming.fast_forward_warming(5000, &mut warm);
        // Architectural state is identical regardless of warming.
        assert_eq!(plain.cpu(), warming.cpu());
        // And the warm state saw I-side traffic.
        assert!(warm.hierarchy.l1i().accesses() > 0);
    }

    #[test]
    fn trace_source_counts_toward_position() {
        let mut engine = FunctionalEngine::new(tiny());
        engine.fast_forward(100);
        let rec = engine.next_record().unwrap();
        assert_eq!(engine.position(), 101);
        assert_eq!(rec.pc, rec.pc); // record is well-formed
    }
}

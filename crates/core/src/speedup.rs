//! The analytical simulation-rate model of Section 3.4 (Figure 4).

/// Simulation rates normalized to plain functional simulation
/// (`S_F ≡ 1.0`).
///
/// * `s_d` — detailed simulation rate relative to functional (the paper
///   uses 1/60 for today's simulators and 1/600 for future ones).
/// * `s_fw` — functional-warming rate relative to functional (≈ 0.55 in
///   SMARTSim: warming adds ~75% overhead).
///
/// # Examples
///
/// ```
/// use smarts_core::SpeedupModel;
///
/// let model = SpeedupModel::paper();
/// let n = 10_000.0;
/// let big = 10e9;
/// // With W bounded small by functional warming, the rate stays near S_FW.
/// let rate = model.functional_warming_rate(n, 1000.0, 2000.0, big);
/// assert!(rate > 0.5 && rate < 0.56);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupModel {
    /// Detailed-simulation rate relative to `S_F = 1`.
    pub s_d: f64,
    /// Functional-warming rate relative to `S_F = 1`.
    pub s_fw: f64,
}

impl SpeedupModel {
    /// The paper's contemporary operating point: `S_D = 1/60`,
    /// `S_FW = 0.55`.
    pub fn paper() -> Self {
        SpeedupModel {
            s_d: 1.0 / 60.0,
            s_fw: 0.55,
        }
    }

    /// The paper's projected future detailed simulator: `S_D = 1/600`.
    pub fn future() -> Self {
        SpeedupModel {
            s_d: 1.0 / 600.0,
            s_fw: 0.55,
        }
    }

    /// A model built from rates measured on this host (the
    /// `warming`/`detail` bench binaries): `S_D` and `S_FW` are the
    /// detailed and functional-warming rates normalized to the measured
    /// plain-functional rate, matching the paper's `S_F ≡ 1` convention.
    ///
    /// # Panics
    ///
    /// Panics unless all three rates are positive and neither warming
    /// nor detailed simulation is faster than plain functional
    /// simulation (they do strictly more work per instruction).
    pub fn from_measured_rates(
        functional_mips: f64,
        warming_mips: f64,
        detailed_mips: f64,
    ) -> Self {
        assert!(
            functional_mips > 0.0 && warming_mips > 0.0 && detailed_mips > 0.0,
            "rates must be positive"
        );
        assert!(
            warming_mips <= functional_mips && detailed_mips <= functional_mips,
            "warming/detailed cannot outrun plain functional simulation"
        );
        SpeedupModel {
            s_d: detailed_mips / functional_mips,
            s_fw: warming_mips / functional_mips,
        }
    }

    /// SMARTS simulation rate with detailed warming only (no functional
    /// warming), from the paper:
    /// `S = S_F·[N − n(U+W)]/N + S_D·[n(U+W)]/N`.
    ///
    /// All quantities in instructions; `n` is the number of sampling
    /// units. The rate is clamped to the all-detailed rate when
    /// `n(U+W) > N`.
    pub fn detailed_warming_rate(&self, n: f64, u: f64, w: f64, stream: f64) -> f64 {
        let detailed = (n * (u + w)).min(stream);
        let functional = stream - detailed;
        (functional + self.s_d * detailed) / stream
    }

    /// SMARTS simulation rate with functional warming: the fast-forward
    /// portion advances at `S_FW` instead of `S_F`.
    pub fn functional_warming_rate(&self, n: f64, u: f64, w: f64, stream: f64) -> f64 {
        let detailed = (n * (u + w)).min(stream);
        let functional = stream - detailed;
        (self.s_fw * functional + self.s_d * detailed) / stream
    }

    /// Wall-clock seconds to simulate `stream` instructions at the given
    /// normalized rate, assuming plain functional simulation runs at
    /// `functional_mips` million instructions per second.
    pub fn runtime_seconds(rate: f64, stream: f64, functional_mips: f64) -> f64 {
        assert!(rate > 0.0 && functional_mips > 0.0);
        stream / (rate * functional_mips * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const STREAM: f64 = 10e9;

    #[test]
    fn rate_is_one_with_no_detail() {
        let m = SpeedupModel::paper();
        assert!((m.detailed_warming_rate(0.0, 1000.0, 0.0, STREAM) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rate_collapses_to_s_d_when_all_detailed() {
        let m = SpeedupModel::paper();
        let rate = m.detailed_warming_rate(1e7, 1000.0, 0.0, STREAM);
        assert!((rate - m.s_d).abs() < 1e-9);
        // Oversubscription clamps rather than going negative.
        let over = m.detailed_warming_rate(1e9, 1000.0, 1000.0, STREAM);
        assert!((over - m.s_d).abs() < 1e-9);
    }

    #[test]
    fn rate_decreases_monotonically_with_w() {
        let m = SpeedupModel::paper();
        let mut last = f64::INFINITY;
        for w in [0.0, 1e3, 1e4, 1e5] {
            let rate = m.detailed_warming_rate(10_000.0, 1000.0, w, STREAM);
            assert!(rate < last, "rate {rate} at W={w}");
            last = rate;
        }
        // Once n(U+W) exceeds the stream the rate saturates at S_D.
        let saturated = m.detailed_warming_rate(10_000.0, 1000.0, 1e7, STREAM);
        assert!((saturated - m.s_d).abs() < 1e-9);
    }

    #[test]
    fn future_simulator_collapses_earlier_and_harder() {
        // The Figure 4 observation: smaller S_D makes the rate fall
        // earlier and more sharply as W grows.
        let today = SpeedupModel::paper();
        let future = SpeedupModel::future();
        let w = 1e6;
        let rate_today = today.detailed_warming_rate(10_000.0, 1000.0, w, STREAM);
        let rate_future = future.detailed_warming_rate(10_000.0, 1000.0, w, STREAM);
        assert!(rate_future < rate_today / 2.0);
    }

    #[test]
    fn functional_warming_is_insensitive_to_s_d() {
        // With W bounded to thousands, the functional-warming rate barely
        // moves when the detailed simulator slows 10×.
        let today = SpeedupModel::paper();
        let future = SpeedupModel::future();
        let args = (10_000.0, 1000.0, 2000.0, STREAM);
        let r1 = today.functional_warming_rate(args.0, args.1, args.2, args.3);
        let r2 = future.functional_warming_rate(args.0, args.1, args.2, args.3);
        assert!((r1 - r2).abs() / r1 < 0.01, "r1={r1} r2={r2}");
        assert!((r1 - 0.55).abs() < 0.01);
    }

    #[test]
    fn measured_rates_normalize_to_functional() {
        let m = SpeedupModel::from_measured_rates(200.0, 44.0, 2.5);
        assert!((m.s_fw - 0.22).abs() < 1e-12);
        assert!((m.s_d - 0.0125).abs() < 1e-12);
        // The measured model plugs straight into the Section 3.4 rates.
        let rate = m.functional_warming_rate(10_000.0, 1000.0, 2000.0, STREAM);
        assert!(rate > 0.9 * m.s_fw && rate <= m.s_fw);
    }

    #[test]
    #[should_panic]
    fn measured_rates_reject_impossible_ordering() {
        let _ = SpeedupModel::from_measured_rates(100.0, 150.0, 2.0);
    }

    #[test]
    fn runtime_conversion() {
        // 10 G instructions at rate 0.5 and 10 MIPS functional: 2000 s.
        let secs = SpeedupModel::runtime_seconds(0.5, 10e9, 10.0);
        assert!((secs - 2000.0).abs() < 1e-9);
    }
}

//! The SMARTS framework: Sampling Microarchitecture Simulation with
//! rigorous statistical confidence (Wunderlich, Wenisch, Falsafi, Hoe —
//! ISCA 2003).
//!
//! SMARTS estimates whole-benchmark metrics (CPI, energy per instruction)
//! by measuring only `n` systematic sampling units of `U` instructions
//! each, fast-forwarding the stream in between. Two mechanisms make tiny
//! units (U = 1000) measurable without bias:
//!
//! * **functional warming** ([`Warming::Functional`]) — caches, TLBs, and
//!   the branch predictor stay up to date during fast-forwarding, and
//! * **detailed warming** — `W` instructions of unmeasured detailed
//!   simulation rebuild the short-history pipeline state before each
//!   unit, with `W` analytically bounded (Section 4.4).
//!
//! The measured per-unit coefficient of variation then gives a confidence
//! interval on the estimate, and — when the interval is too wide — the
//! tuned sample size for one follow-up run
//! ([`SmartsSim::sample_two_step`]).
//!
//! # Examples
//!
//! The full paper procedure on one benchmark:
//!
//! ```
//! use smarts_core::{SamplingParams, SmartsSim, Warming};
//! use smarts_stats::Confidence;
//! use smarts_uarch::MachineConfig;
//! use smarts_workloads::find;
//!
//! # fn main() -> Result<(), smarts_core::SmartsError> {
//! let sim = SmartsSim::new(MachineConfig::eight_way());
//! let bench = find("branchy-1").unwrap().scaled(0.1);
//!
//! // Step 1: sample with an initial n.
//! let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 25)?;
//! let outcome = sim.sample_two_step(&bench, &params, 0.03, Confidence::THREE_SIGMA)?;
//!
//! // The final estimate and its confidence:
//! let report = outcome.best();
//! let cpi = report.cpi();
//! let epsilon = cpi.achieved_epsilon(Confidence::THREE_SIGMA)?;
//! println!("CPI = {:.3} ± {:.1}%", cpi.mean(), epsilon * 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod compare;
mod engine;
mod error;
mod reference;
mod sampler;
mod speedup;

pub use checkpoint::{
    stream_checkpoints_range, CheckpointLibrary, RangeSummary, StreamSummary, UnitCheckpoint,
    UnitReplay,
};
pub use compare::{compare_machines, PairedComparison};
pub use engine::{EngineSnapshot, FunctionalEngine};
pub use error::SmartsError;
pub use reference::ReferenceRun;
pub use sampler::{
    ModeInstructions, SampleReport, SamplerKind, SamplerSpec, SamplingParams, SmartsSim,
    TwoStepOutcome, UnitSample, Warming,
};
pub use speedup::SpeedupModel;

//! Matched-pair design comparison: sampling two machine configurations
//! over the *same* sampling units.
//!
//! SMARTS's introduction motivates sampling with microarchitecture design
//! studies, where the quantity of interest is usually the *difference*
//! between two configurations, not either absolute CPI. Measuring the
//! identical systematic sample on both machines turns the comparison into
//! a paired experiment: per-unit CPI deltas share the program-phase
//! variation that dominates `V_CPI`, so the difference estimate converges
//! far faster than two independent estimates would — the classic
//! variance-reduction argument for matched pairs.
//!
//! This module is an extension beyond the paper's evaluation, built
//! entirely from the paper's machinery.

use crate::error::SmartsError;
use crate::sampler::{SampleReport, SamplingParams, SmartsSim};
use smarts_stats::{Confidence, RunningStats};
use smarts_workloads::Benchmark;

/// Result of sampling the same units on two machine configurations.
#[derive(Debug, Clone)]
pub struct PairedComparison {
    /// The report for the baseline configuration.
    pub baseline: SampleReport,
    /// The report for the alternative configuration.
    pub alternative: SampleReport,
    diffs: RunningStats,
}

impl PairedComparison {
    /// Pairs two already-measured reports of the same systematic design
    /// (same `U`, `k`, `j`, so unit starts coincide).
    ///
    /// This is the assembly half of [`compare_machines`], split out so
    /// the reports can come from any driver — in particular the parallel
    /// executor in `smarts-exec`.
    ///
    /// # Errors
    ///
    /// Returns [`SmartsError::EmptySample`] if the runs measured no
    /// common units.
    pub fn from_reports(
        baseline: SampleReport,
        alternative: SampleReport,
    ) -> Result<Self, SmartsError> {
        let mut diffs = RunningStats::new();
        for (ua, ub) in baseline.units.iter().zip(&alternative.units) {
            debug_assert_eq!(ua.start_instr, ub.start_instr, "designs must align");
            diffs.push(ub.cpi - ua.cpi);
        }
        if diffs.count() == 0 {
            return Err(SmartsError::EmptySample);
        }
        Ok(PairedComparison {
            baseline,
            alternative,
            diffs,
        })
    }

    /// Mean CPI difference `alternative − baseline` (negative means the
    /// alternative is faster).
    pub fn cpi_delta(&self) -> f64 {
        self.diffs.mean()
    }

    /// Mean speedup `CPI_baseline / CPI_alternative`.
    pub fn speedup(&self) -> f64 {
        self.baseline.cpi().mean() / self.alternative.cpi().mean()
    }

    /// Number of paired units.
    pub fn pairs(&self) -> u64 {
        self.diffs.count()
    }

    /// Absolute half-width of the confidence interval on the CPI
    /// difference, from the paired per-unit deltas:
    /// `±z·σ_diff/√n`.
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than two pairs.
    pub fn delta_half_width(&self, confidence: Confidence) -> Result<f64, SmartsError> {
        let n = self.diffs.count();
        if n < 2 {
            return Err(SmartsError::Stats(
                smarts_stats::StatsError::InsufficientSample {
                    required: 2,
                    actual: n,
                },
            ));
        }
        Ok(confidence.z() * self.diffs.std_dev() / (n as f64).sqrt())
    }

    /// Whether the configurations differ significantly at the given
    /// confidence (the interval around the delta excludes zero).
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than two pairs.
    pub fn is_significant(&self, confidence: Confidence) -> Result<bool, SmartsError> {
        Ok(self.cpi_delta().abs() > self.delta_half_width(confidence)?)
    }

    /// How much tighter the paired interval is than the naive interval
    /// obtained by combining the two runs' independent variances
    /// (`√(σ_a² + σ_b²)/σ_diff`); > 1 means pairing helped.
    pub fn pairing_gain(&self) -> f64 {
        let independent =
            (self.baseline.cpi_std_dev().powi(2) + self.alternative.cpi_std_dev().powi(2)).sqrt();
        let paired = self.diffs.std_dev();
        if paired == 0.0 {
            f64::INFINITY
        } else {
            independent / paired
        }
    }
}

impl SampleReport {
    /// Sample standard deviation of the per-unit CPI values.
    pub fn cpi_std_dev(&self) -> f64 {
        let stats: RunningStats = self.unit_cpis().collect();
        stats.std_dev()
    }
}

/// Samples the same systematic design on two machines and pairs the
/// per-unit measurements.
///
/// Both runs use the caller's `params` (same `U`, `k`, `j`), so unit
/// starts coincide exactly; the detailed-warming length is taken from
/// each machine's own recommendation when `params.detailed_warming` is 0.
///
/// # Errors
///
/// Propagates sampling errors from either run, and fails with
/// [`SmartsError::EmptySample`] if the two runs measured no common units.
pub fn compare_machines(
    baseline: &SmartsSim,
    alternative: &SmartsSim,
    bench: &Benchmark,
    params: &SamplingParams,
) -> Result<PairedComparison, SmartsError> {
    let with_w = |sim: &SmartsSim| -> SamplingParams {
        if params.detailed_warming == 0 {
            SamplingParams {
                detailed_warming: sim.config().recommended_detailed_warming(),
                ..*params
            }
        } else {
            *params
        }
    };
    let a = baseline.sample(bench, &with_w(baseline))?;
    let b = alternative.sample(bench, &with_w(alternative))?;
    PairedComparison::from_reports(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::Warming;
    use smarts_uarch::MachineConfig;
    use smarts_workloads::find;

    fn params(bench: &Benchmark, n: u64) -> SamplingParams {
        SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            0, // use each machine's own recommended W
            Warming::Functional,
            n,
            1,
        )
        .unwrap()
    }

    #[test]
    fn wider_machine_shows_positive_speedup() {
        let base = SmartsSim::new(MachineConfig::eight_way());
        let alt = SmartsSim::new(MachineConfig::sixteen_way());
        let bench = find("stream-2").unwrap().scaled(0.1);
        let cmp = compare_machines(&base, &alt, &bench, &params(&bench, 20)).unwrap();
        assert!(cmp.pairs() >= 15);
        assert!(cmp.speedup() >= 0.95, "speedup {}", cmp.speedup());
        // 16-way CPI delta is ≤ 0 (never slower) on this kernel.
        assert!(cmp.cpi_delta() <= 0.05, "delta {}", cmp.cpi_delta());
    }

    #[test]
    fn identical_machines_show_no_significant_difference() {
        let a = SmartsSim::new(MachineConfig::eight_way());
        let b = SmartsSim::new(MachineConfig::eight_way());
        let bench = find("branchy-1").unwrap().scaled(0.05);
        let cmp = compare_machines(&a, &b, &bench, &params(&bench, 15)).unwrap();
        assert_eq!(cmp.cpi_delta(), 0.0);
        assert!(!cmp.is_significant(Confidence::NINETY_FIVE).unwrap());
        assert!((cmp.speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pairing_tightens_the_interval_on_phased_code() {
        // phased-2 has huge per-unit variance that is common-mode between
        // configurations: pairing should win big.
        let base = SmartsSim::new(MachineConfig::eight_way());
        let alt = SmartsSim::new(MachineConfig::sixteen_way());
        let bench = find("phased-2").unwrap().scaled(0.2);
        let cmp = compare_machines(&base, &alt, &bench, &params(&bench, 25)).unwrap();
        assert!(
            cmp.pairing_gain() > 1.5,
            "pairing gain {} should exceed 1.5 on phased code",
            cmp.pairing_gain()
        );
    }

    #[test]
    fn delta_interval_requires_two_pairs() {
        let a = SmartsSim::new(MachineConfig::eight_way());
        let b = SmartsSim::new(MachineConfig::eight_way());
        let bench = find("loopy-1").unwrap().scaled(0.02);
        let mut p = params(&bench, 2);
        p.max_units = Some(1);
        let cmp = compare_machines(&a, &b, &bench, &p).unwrap();
        assert!(cmp.delta_half_width(Confidence::NINETY_FIVE).is_err());
    }
}

//! Full-stream detailed simulation: the ground truth that sampling
//! estimates are compared against, and the source of the per-unit CPI
//! population traces behind Figure 2 and the bias studies.

use std::time::{Duration, Instant};

use crate::engine::FunctionalEngine;
use crate::sampler::SmartsSim;
use smarts_energy::ActivityCounters;
use smarts_uarch::{Pipeline, WarmState};
use smarts_workloads::Benchmark;

/// Result of simulating an entire benchmark stream in detail.
#[derive(Debug, Clone)]
pub struct ReferenceRun {
    /// True average CPI over the whole stream.
    pub cpi: f64,
    /// True average energy per instruction (nJ).
    pub epi: f64,
    /// Total cycles.
    pub cycles: u64,
    /// Total committed instructions.
    pub instructions: u64,
    /// Unit size of the per-unit traces below.
    pub unit_size: u64,
    /// CPI of each consecutive `unit_size`-instruction unit (the
    /// population for variation and bias analyses). A trailing partial
    /// unit is excluded.
    pub unit_cpis: Vec<f64>,
    /// EPI of each consecutive unit.
    pub unit_epis: Vec<f64>,
    /// Wall-clock time of the detailed run.
    pub wall: Duration,
    /// Aggregate activity counters.
    pub counters: ActivityCounters,
}

impl ReferenceRun {
    /// Number of whole units in the population, `N = ⌊stream/U⌋`.
    pub fn population(&self) -> u64 {
        self.unit_cpis.len() as u64
    }
}

impl SmartsSim {
    /// Simulates the whole benchmark in detail, recording the CPI/EPI of
    /// every consecutive `unit_size`-instruction unit.
    ///
    /// This is the (expensive) `sim-outorder`-equivalent baseline: no
    /// fast-forwarding, every instruction through the pipeline, with the
    /// warm state evolving continuously.
    pub fn reference(&self, bench: &Benchmark, unit_size: u64) -> ReferenceRun {
        assert!(unit_size > 0, "unit size must be nonzero");
        let start = Instant::now();
        let mut engine = FunctionalEngine::new(bench.load());
        let mut warm = WarmState::new(self.config());
        let mut pipeline = Pipeline::new(self.config());

        let mut unit_cpis = Vec::new();
        let mut unit_epis = Vec::new();
        let mut counters = ActivityCounters::default();
        let mut cycles = 0u64;
        let mut instructions = 0u64;
        loop {
            let m = pipeline.run(&mut warm, &mut engine, unit_size, true);
            cycles += m.cycles;
            instructions += m.instructions;
            counters.merge(&m.counters);
            if m.instructions == unit_size {
                unit_cpis.push(m.cpi());
                unit_epis.push(self.energy().energy_per_instruction(&m.counters, m.cycles));
            }
            if m.instructions < unit_size {
                break; // stream exhausted (trailing partial unit excluded)
            }
        }

        let cpi = if instructions == 0 {
            0.0
        } else {
            cycles as f64 / instructions as f64
        };
        let epi = self.energy().energy_per_instruction(&counters, cycles);
        ReferenceRun {
            cpi,
            epi,
            cycles,
            instructions,
            unit_size,
            unit_cpis,
            unit_epis,
            wall: start.elapsed(),
            counters,
        }
    }

    /// Times a plain functional run of the benchmark (no warming, no
    /// timing model): the `sim-fast` baseline of Table 6. Returns the
    /// wall-clock time and the instruction count.
    pub fn time_functional(&self, bench: &Benchmark) -> (Duration, u64) {
        let mut engine = FunctionalEngine::new(bench.load());
        let start = Instant::now();
        engine.fast_forward(u64::MAX - 1);
        (start.elapsed(), engine.position())
    }

    /// Times a functional-warming run of the benchmark (architectural
    /// state plus cache/TLB/predictor warming, no timing model): the
    /// `S_FW` mode of Section 3.4. Returns the wall-clock time and the
    /// instruction count.
    pub fn time_functional_warming(&self, bench: &Benchmark) -> (Duration, u64) {
        let mut engine = FunctionalEngine::new(bench.load());
        let mut warm = WarmState::new(self.config());
        let start = Instant::now();
        engine.fast_forward_warming(u64::MAX - 1, &mut warm);
        (start.elapsed(), engine.position())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_uarch::MachineConfig;
    use smarts_workloads::find;

    fn sim() -> SmartsSim {
        SmartsSim::new(MachineConfig::eight_way())
    }

    #[test]
    fn reference_covers_whole_stream() {
        let bench = find("loopy-1").unwrap().scaled(0.02); // ~72k instrs
        let reference = sim().reference(&bench, 1000);
        assert!(reference.instructions >= 70_000);
        assert!(reference.cpi > 0.0);
        assert!(reference.epi > 0.0);
        assert_eq!(reference.population(), reference.instructions / 1000);
    }

    #[test]
    fn unit_trace_mean_matches_total_cpi() {
        let bench = find("branchy-1").unwrap().scaled(0.02);
        let reference = sim().reference(&bench, 500);
        let mean: f64 = reference.unit_cpis.iter().sum::<f64>() / reference.unit_cpis.len() as f64;
        // Units are equal-length, so the unit mean equals stream CPI up to
        // the excluded partial tail.
        assert!(
            (mean - reference.cpi).abs() / reference.cpi < 0.02,
            "mean {mean} vs cpi {}",
            reference.cpi
        );
    }

    #[test]
    fn functional_is_faster_than_detailed() {
        let bench = find("loopy-1").unwrap().scaled(0.05);
        let simulator = sim();
        let reference = simulator.reference(&bench, 1000);
        let (func, n) = simulator.time_functional(&bench);
        assert_eq!(n, reference.instructions);
        assert!(
            func < reference.wall,
            "functional {func:?} should beat detailed {:?}",
            reference.wall
        );
    }

    #[test]
    fn warming_run_slower_than_plain_functional_but_faster_than_detailed() {
        let bench = find("hashp-2").unwrap().scaled(0.1);
        let simulator = sim();
        let (_plain, n1) = simulator.time_functional(&bench);
        let (_warmed, n2) = simulator.time_functional_warming(&bench);
        assert_eq!(n1, n2);
        // Wall-clock comparisons are flaky at small scale in CI; the real
        // S_F/S_FW/S_D ratios are measured by the bench harness.
    }
}

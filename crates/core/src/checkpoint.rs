//! Checkpointed sampling: pay the fast-forward once, replay the sample
//! many times.
//!
//! The paper's closing argument is that SMARTS's simulation rate is
//! bounded by fast-forwarding/functional warming, not by the detailed
//! simulator — so the way to go faster still is to eliminate the
//! fast-forward. That is exactly what the authors later built as
//! *TurboSMARTS / SimFlex checkpointing*: store the architectural and
//! warmable microarchitectural state at each sampling unit's
//! warming-start point, then reconstitute units directly.
//!
//! This module implements that extension. A [`CheckpointLibrary`] is
//! built with one functional-warming pass; [`SmartsSim::sample_library`]
//! then measures the whole sample without executing a single
//! fast-forward instruction. Because the long-history warm state is
//! stored per checkpoint, the library can be replayed against any
//! machine that shares the warmable-state geometry (caches, TLBs,
//! predictor) — e.g. sweeps over FU counts, window sizes, store-buffer
//! depth, or branch-penalty parameters reuse one library.
//!
//! Memory cost: the library is **delta-resident**. Each unit keeps its
//! copy-on-write memory snapshot (cheap — unmodified pages are shared)
//! plus only the sparse set of warm-state words that changed since the
//! previous unit; one full warm-word image (the first unit's) anchors
//! the chain. Consecutive units share almost all warm state, so
//! residency is O(base + Σ deltas) rather than O(units × warm size) —
//! the same delta representation the on-disk store uses, ported
//! in-memory. A [`UnitCheckpoint`] is rebuilt transiently at replay
//! time by rolling a cursor along the delta chain; a small cursor pool
//! makes sequential (and mostly-sequential parallel) replays O(delta)
//! per unit instead of O(chain).

use crate::engine::{EngineSnapshot, FunctionalEngine};
use crate::error::SmartsError;
use crate::sampler::{
    ModeInstructions, SampleReport, SamplingParams, SmartsSim, UnitSample, Warming,
};
use smarts_isa::{BuiltinIsa, Isa};
use smarts_uarch::{MachineConfig, Pipeline, WarmState};
use smarts_workloads::{Benchmark, Loaded};
use std::collections::HashSet;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One reconstitutable sampling unit: architectural state plus warm
/// microarchitectural state at the unit's detailed-warming start.
///
/// Checkpoints are produced either in bulk by
/// [`SmartsSim::build_library`] or one at a time by
/// [`SmartsSim::stream_checkpoints`], and replayed with
/// [`SmartsSim::replay_checkpoint`] (or [`SmartsSim::replay_unit`] via a
/// library).
/// Generic over the instruction-set frontend that produced it (default:
/// the built-in one); the warm state is frontend-independent because all
/// frontends warm through the shared record vocabulary.
pub struct UnitCheckpoint<I: Isa = BuiltinIsa> {
    unit_start: u64,
    snapshot: EngineSnapshot<I>,
    warm: WarmState,
}

impl<I: Isa> Clone for UnitCheckpoint<I> {
    fn clone(&self) -> Self {
        UnitCheckpoint {
            unit_start: self.unit_start,
            snapshot: self.snapshot.clone(),
            warm: self.warm.clone(),
        }
    }
}

impl<I: Isa> fmt::Debug for UnitCheckpoint<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnitCheckpoint")
            .field("unit_start", &self.unit_start)
            .field("snapshot", &self.snapshot)
            .finish_non_exhaustive()
    }
}

impl<I: Isa> UnitCheckpoint<I> {
    /// Assembles a checkpoint from decoded parts (the checkpoint-store
    /// load path). The parts must describe one coherent warming-pass
    /// state — the store guarantees this by construction, serializing
    /// exactly what [`SmartsSim::stream_checkpoints`] emitted.
    pub fn from_parts(unit_start: u64, snapshot: EngineSnapshot<I>, warm: WarmState) -> Self {
        UnitCheckpoint {
            unit_start,
            snapshot,
            warm,
        }
    }

    /// The unit's start offset in the instruction stream.
    pub fn unit_start(&self) -> u64 {
        self.unit_start
    }

    /// The architectural snapshot at the unit's warming-start point.
    pub fn snapshot(&self) -> &EngineSnapshot<I> {
        &self.snapshot
    }

    /// The warm microarchitectural state at the unit's warming-start
    /// point.
    pub fn warm(&self) -> &WarmState {
        &self.warm
    }

    /// Approximate bytes this checkpoint holds alive: its memory
    /// snapshot's resident pages plus its warm-state copy.
    ///
    /// Pages shared copy-on-write with *other* checkpoints are counted
    /// in full here (an upper bound on the marginal footprint); use
    /// [`CheckpointLibrary::approx_resident_bytes`] for a deduplicated
    /// total across a whole library.
    pub fn approx_resident_bytes(&self) -> u64 {
        (self.snapshot.memory_resident_bytes() + self.warm.approx_bytes()) as u64
    }
}

/// Summary of one [`SmartsSim::stream_checkpoints`] pass.
#[derive(Debug, Clone, Copy)]
pub struct StreamSummary {
    /// Checkpoints offered to the consumer.
    pub emitted: u64,
    /// Wall-clock of the warming pass (the producer's critical path).
    pub build_wall: Duration,
    /// Whether the consumer stopped the stream before the natural end.
    pub stopped: bool,
}

/// Summary of one [`stream_checkpoints_range`] drive.
#[derive(Debug, Clone, Copy)]
pub struct RangeSummary {
    /// Checkpoints offered to the consumer.
    pub emitted: u64,
    /// Whether the consumer stopped the stream before the range end.
    pub stopped: bool,
}

/// Drives functional warming across one contiguous range of the
/// systematic grid, emitting each unit's checkpoint at its boundary:
/// the inner loop of [`SmartsSim::stream_checkpoints`], exposed so
/// sharded warming can run disjoint grid subranges on their own
/// threads from fast-forwarded start states and re-drive shard
/// prefixes during boundary stitching.
///
/// `grid_start` must lie on the grid (`offset + i·interval`);
/// `grid_end` is an exclusive unit-index bound (`u64::MAX` for "until
/// the stream ends"). The engine is expected to stand at or before
/// `grid_start`'s warm-start point; `params` must already be
/// validated. At most `max_units` checkpoints are emitted. On return
/// the engine stands wherever the last fast-forward left it — for a
/// completed range, at the last emitted unit's warm-start point.
pub fn stream_checkpoints_range<I: Isa>(
    engine: &mut FunctionalEngine<I>,
    warm: &mut WarmState,
    params: &SamplingParams,
    grid_start: u64,
    grid_end: u64,
    max_units: Option<u64>,
    emit: &mut dyn FnMut(UnitCheckpoint<I>) -> bool,
) -> RangeSummary {
    let mut emitted: u64 = 0;
    let mut stopped = false;
    let mut unit_index = grid_start;
    while unit_index < grid_end {
        if let Some(max) = max_units {
            if emitted >= max {
                break;
            }
        }
        let unit_start = unit_index * params.unit_size;
        let warm_start = unit_start.saturating_sub(params.detailed_warming);
        match params.warming {
            Warming::None => engine.fast_forward(warm_start),
            Warming::Functional => engine.fast_forward_warming(warm_start, warm),
        };
        if engine.finished() {
            break;
        }
        if engine.position() > unit_start {
            // Overlapping designs (k·U < W) can leave the engine past
            // this unit entirely; skip to the next one.
            unit_index += params.interval;
            continue;
        }
        // The unit (and its detailed warming) must fit in the stream;
        // probe cheaply by checkpointing now and validating on replay.
        let checkpoint = UnitCheckpoint {
            unit_start,
            snapshot: engine.snapshot(),
            warm: warm.clone(),
        };
        if !emit(checkpoint) {
            stopped = true;
            break;
        }
        emitted += 1;
        unit_index += params.interval;
    }
    RangeSummary { emitted, stopped }
}

/// Outcome of replaying one checkpointed sampling unit in isolation.
///
/// The accounting fields let callers rebuild the exact
/// [`ModeInstructions`] a sequential replay pass would have produced,
/// whichever order (or thread) the units were actually measured in.
#[derive(Debug, Clone)]
pub enum UnitReplay {
    /// The unit measured all `U` instructions.
    Complete {
        /// The measured unit (boxed: it carries full activity counters,
        /// dwarfing the `Partial` variant).
        sample: Box<UnitSample>,
        /// Instructions consumed by detailed warming before the unit.
        detailed_warmed: u64,
    },
    /// The stream ended inside the unit; no sample is recorded but the
    /// consumed instructions still count toward the mode breakdown.
    Partial {
        /// Instructions consumed by detailed warming before the unit.
        detailed_warmed: u64,
        /// Instructions measured before the stream ended (`< U`).
        measured: u64,
    },
}

impl UnitReplay {
    /// Adds this replay's consumed instructions to a mode breakdown —
    /// the one accounting rule shared by the sequential replay loop and
    /// every parallel worker/merge path.
    pub fn account(&self, instructions: &mut ModeInstructions) {
        match self {
            UnitReplay::Complete {
                sample,
                detailed_warmed,
            } => {
                instructions.detailed_warmed += detailed_warmed;
                instructions.measured += sample.instructions;
            }
            UnitReplay::Partial {
                detailed_warmed,
                measured,
            } => {
                instructions.detailed_warmed += detailed_warmed;
                instructions.measured += measured;
            }
        }
    }
}

/// One unit's delta-resident record inside a [`CheckpointLibrary`]:
/// the copy-on-write memory snapshot plus the sparse set of warm-state
/// words that differ from the previous unit's image.
#[derive(Debug, Clone)]
struct LibraryUnit {
    unit_start: u64,
    snapshot: EngineSnapshot,
    /// `(word index, new value)` pairs against the previous unit's
    /// warm-word image (empty for the first unit — its full image is
    /// the library's `base_warm`).
    warm_delta: Vec<(u32, u64)>,
}

/// A warm-word image positioned at one unit of the delta chain, kept in
/// a small pool so mostly-sequential replays advance O(delta) per unit
/// instead of re-applying the chain from the base every time.
#[derive(Debug, Clone)]
struct WarmCursor {
    unit: usize,
    words: Vec<u64>,
}

/// How many rolled-forward warm images the library keeps around for
/// reuse. Sequential replay needs one; a handful covers parallel
/// workers striding through disjoint index ranges.
const CURSOR_POOL_CAP: usize = 8;

/// A library of per-unit checkpoints for one benchmark and one sampling
/// design, built by a single functional-warming pass.
#[derive(Debug)]
pub struct CheckpointLibrary {
    params: SamplingParams,
    program: smarts_isa::Program,
    warm_geometry: MachineConfig,
    base_warm: Vec<u64>,
    units: Vec<LibraryUnit>,
    cursors: Mutex<Vec<WarmCursor>>,
    build_wall: Duration,
}

impl Clone for CheckpointLibrary {
    fn clone(&self) -> Self {
        // The cursor pool is a cache, not state — a clone starts empty.
        CheckpointLibrary {
            params: self.params,
            program: self.program.clone(),
            warm_geometry: self.warm_geometry.clone(),
            base_warm: self.base_warm.clone(),
            units: self.units.clone(),
            cursors: Mutex::new(Vec::new()),
            build_wall: self.build_wall,
        }
    }
}

impl CheckpointLibrary {
    /// Number of checkpointed units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the library holds no checkpoints.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The sampling design the library was built for.
    pub fn params(&self) -> &SamplingParams {
        &self.params
    }

    /// Wall-clock spent building the library (the one-time cost that
    /// replays amortize).
    pub fn build_wall(&self) -> Duration {
        self.build_wall
    }

    /// The stream offset (in instructions) of each checkpointed unit, in
    /// stream order.
    pub fn unit_starts(&self) -> impl Iterator<Item = u64> + '_ {
        self.units.iter().map(|u| u.unit_start)
    }

    /// Materialises unit `index`'s checkpoint transiently: the memory
    /// snapshot is shared copy-on-write, and the warm state is rebuilt
    /// by rolling a cursor along the delta chain. The returned
    /// checkpoint is bit-identical to the one the warming pass emitted;
    /// dropping it costs the library nothing (the library itself stays
    /// delta-resident).
    pub fn checkpoint(&self, index: usize) -> Option<UnitCheckpoint> {
        let unit = self.units.get(index)?;
        Some(UnitCheckpoint {
            unit_start: unit.unit_start,
            snapshot: unit.snapshot.clone(),
            warm: self.warm_at(index),
        })
    }

    /// Rebuilds the full warm state at `index` from the delta chain,
    /// reusing (and then returning) a pooled cursor.
    fn warm_at(&self, index: usize) -> WarmState {
        let cursor = self.roll_cursor(index);
        let mut warm = WarmState::new(&self.warm_geometry);
        let used = warm
            .load_state(&cursor.words)
            .expect("library warm words parse against their own geometry");
        debug_assert_eq!(used, cursor.words.len());
        let mut pool = self.cursors.lock().unwrap_or_else(|p| p.into_inner());
        if pool.len() < CURSOR_POOL_CAP {
            pool.push(cursor);
        } else if let Some(slot) = pool.iter_mut().min_by_key(|c| c.unit) {
            // Evict the least-advanced cursor — it is the cheapest to
            // recreate from the base image.
            if slot.unit < cursor.unit {
                *slot = cursor;
            }
        }
        warm
    }

    /// Takes the most-advanced pooled cursor at or before `index` (or
    /// starts a fresh one from the base image) and rolls it forward to
    /// `index` by applying per-unit deltas.
    fn roll_cursor(&self, index: usize) -> WarmCursor {
        let mut cursor = {
            let mut pool = self.cursors.lock().unwrap_or_else(|p| p.into_inner());
            let best = pool
                .iter()
                .enumerate()
                .filter(|(_, c)| c.unit <= index)
                .max_by_key(|&(_, c)| c.unit)
                .map(|(i, _)| i);
            match best {
                Some(i) => pool.swap_remove(i),
                None => WarmCursor {
                    unit: 0,
                    words: self.base_warm.clone(),
                },
            }
        };
        while cursor.unit < index {
            cursor.unit += 1;
            for &(at, word) in &self.units[cursor.unit].warm_delta {
                cursor.words[at as usize] = word;
            }
        }
        cursor
    }

    /// Approximate bytes the library holds alive: memory snapshot pages
    /// with copy-on-write sharing counted once (deduplicated by `Arc`
    /// identity), one full warm-word image anchoring the delta chain,
    /// the sparse per-unit warm deltas, and the cursor pool.
    ///
    /// Because consecutive units share almost all warm state, this is
    /// O(base + Σ deltas) — far below the one-full-warm-copy-per-unit
    /// residency a naive library would have.
    pub fn approx_resident_bytes(&self) -> u64 {
        let mut seen = HashSet::new();
        let mut total = 8 * self.base_warm.len() as u64;
        for unit in &self.units {
            total += unit.snapshot.memory_resident_bytes_dedup(&mut seen) as u64;
            total += (std::mem::size_of::<(u32, u64)>() * unit.warm_delta.len()) as u64;
        }
        let pool = self.cursors.lock().unwrap_or_else(|p| p.into_inner());
        total += pool.iter().map(|c| 8 * c.words.len() as u64).sum::<u64>();
        total
    }

    /// Whether a machine can replay this library: its warmable-state
    /// geometry (caches, TLBs, branch predictor, memory latency) must
    /// match the configuration the library was warmed for; the pipeline
    /// core (widths, window, FUs, store buffer) may differ freely.
    pub fn compatible_with(&self, cfg: &MachineConfig) -> bool {
        let a = &self.warm_geometry;
        a.l1i == cfg.l1i
            && a.l1d == cfg.l1d
            && a.l2 == cfg.l2
            && a.itlb == cfg.itlb
            && a.dtlb == cfg.dtlb
            && a.bpred == cfg.bpred
            && a.mem_latency == cfg.mem_latency
    }
}

impl SmartsSim {
    /// Builds a checkpoint library for a sampling design with one
    /// functional-warming pass over the stream.
    ///
    /// With [`Warming::Functional`] the stored warm state at each unit is
    /// the state a direct sampling run would have (up to the detailed
    /// episodes' own pipeline-order updates). With [`Warming::None`] the
    /// stored warm state is cold for every unit, so replays measure
    /// cold-start units — a direct `Warming::None` run instead carries
    /// *stale* state from the previous detailed episode; prefer
    /// functional warming for libraries.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters or when the stream ends
    /// before the first unit.
    pub fn build_library(
        &self,
        bench: &Benchmark,
        params: &SamplingParams,
    ) -> Result<CheckpointLibrary, SmartsError> {
        let loaded = bench.load();
        let program = loaded.program.clone();
        let mut units: Vec<LibraryUnit> = Vec::new();
        let mut base_warm: Vec<u64> = Vec::new();
        let mut prev_words: Vec<u64> = Vec::new();
        let mut words: Vec<u64> = Vec::new();
        let summary = self.stream_checkpoints(loaded, params, |checkpoint| {
            let UnitCheckpoint {
                unit_start,
                snapshot,
                warm,
            } = checkpoint;
            words.clear();
            warm.save_state(&mut words);
            debug_assert!(words.len() <= u32::MAX as usize);
            let warm_delta = if units.is_empty() {
                base_warm = words.clone();
                Vec::new()
            } else {
                // Same geometry on every unit, so the word streams are
                // positionally aligned and diff sparsely.
                debug_assert_eq!(words.len(), prev_words.len());
                words
                    .iter()
                    .zip(prev_words.iter())
                    .enumerate()
                    .filter(|(_, (now, before))| now != before)
                    .map(|(at, (&now, _))| (at as u32, now))
                    .collect()
            };
            units.push(LibraryUnit {
                unit_start,
                snapshot,
                warm_delta,
            });
            std::mem::swap(&mut prev_words, &mut words);
            true
        })?;
        Ok(CheckpointLibrary {
            params: *params,
            program,
            warm_geometry: self.config().clone(),
            base_warm,
            units,
            cursors: Mutex::new(Vec::new()),
            build_wall: summary.build_wall,
        })
    }

    /// Runs the single in-order functional-warming pass of
    /// [`SmartsSim::build_library`], but hands each unit's checkpoint to
    /// `emit` the moment its boundary is reached instead of materialising
    /// the whole library — the producer side of a streamed
    /// checkpoint-replay pipeline. Peak memory is whatever the consumer
    /// retains, not O(n units).
    ///
    /// `emit` returns `false` to stop the stream early (e.g. when the
    /// consuming side has gone away); the pass then ends with
    /// [`StreamSummary::stopped`] set.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters, or
    /// [`SmartsError::EmptySample`] when the stream ends before the first
    /// unit boundary.
    pub fn stream_checkpoints<I: Isa>(
        &self,
        loaded: Loaded<I>,
        params: &SamplingParams,
        mut emit: impl FnMut(UnitCheckpoint<I>) -> bool,
    ) -> Result<StreamSummary, SmartsError> {
        params.validate()?;
        let start = Instant::now();
        let mut engine = FunctionalEngine::new(loaded);
        let mut warm = WarmState::new(self.config());
        let summary = stream_checkpoints_range(
            &mut engine,
            &mut warm,
            params,
            params.offset,
            u64::MAX,
            params.max_units,
            &mut emit,
        );
        if summary.emitted == 0 && !summary.stopped {
            return Err(SmartsError::EmptySample);
        }
        Ok(StreamSummary {
            emitted: summary.emitted,
            build_wall: start.elapsed(),
            stopped: summary.stopped,
        })
    }

    /// Measures the whole sample from a checkpoint library: no
    /// fast-forwarding, one detailed `W + U` episode per checkpoint.
    ///
    /// The simulator's pipeline configuration may differ from the one the
    /// library was built with, as long as the warmable-state geometry
    /// matches ([`CheckpointLibrary::compatible_with`]) — this is how a
    /// design-space sweep reuses one library.
    ///
    /// # Errors
    ///
    /// Returns [`SmartsError::EmptySample`] when no checkpointed unit
    /// completes, or a parameter error when the geometry is incompatible.
    pub fn sample_library(&self, library: &CheckpointLibrary) -> Result<SampleReport, SmartsError> {
        let t0 = Instant::now();
        let mut units = Vec::new();
        let mut instructions = ModeInstructions::default();

        for index in 0..library.len() {
            let replay = self.replay_unit(library, index)?;
            replay.account(&mut instructions);
            match replay {
                UnitReplay::Complete { sample, .. } => units.push(*sample),
                UnitReplay::Partial { .. } => break, // partial tail unit
            }
        }
        if units.is_empty() {
            return Err(SmartsError::EmptySample);
        }
        Ok(SampleReport::from_units(
            library.params,
            units,
            instructions,
            Duration::ZERO,
            t0.elapsed(),
        ))
    }

    /// Replays a single checkpointed unit: one detailed `W + U` episode
    /// starting from the stored architectural and warm state.
    ///
    /// Units are mutually independent — the result depends only on the
    /// checkpoint and this simulator's configuration — so any subset may
    /// be replayed in any order (or concurrently on clones of `self`) and
    /// reassembled with [`SampleReport::from_units`] into the exact report
    /// [`SmartsSim::sample_library`] produces.
    ///
    /// # Errors
    ///
    /// Returns an error when `index` is out of range or the warmable-state
    /// geometry is incompatible.
    pub fn replay_unit(
        &self,
        library: &CheckpointLibrary,
        index: usize,
    ) -> Result<UnitReplay, SmartsError> {
        if !library.compatible_with(self.config()) {
            return Err(SmartsError::ZeroParameter(
                "warmable-state geometry differs from the library's",
            ));
        }
        let Some(checkpoint) = library.checkpoint(index) else {
            return Err(SmartsError::ZeroParameter("checkpoint index out of range"));
        };
        Ok(self.replay_checkpoint(&library.program, &library.params, &checkpoint))
    }

    /// Replays a single checkpoint without a materialised library: one
    /// detailed `W + U` episode starting from the stored architectural
    /// and warm state — the consumer side of a streamed pipeline.
    ///
    /// The checkpoint must have been produced for `program` by a
    /// simulator with this simulator's warmable-state geometry (true by
    /// construction when the checkpoint comes from
    /// [`SmartsSim::stream_checkpoints`] on the same simulator; library
    /// replays go through [`SmartsSim::replay_unit`], which checks).
    /// The replay math is identical to [`SmartsSim::replay_unit`]'s, so
    /// results are bit-identical however the checkpoint was delivered.
    pub fn replay_checkpoint<I: Isa>(
        &self,
        program: &I::Program,
        params: &SamplingParams,
        checkpoint: &UnitCheckpoint<I>,
    ) -> UnitReplay {
        let mut engine =
            FunctionalEngine::from_snapshot(program.clone(), checkpoint.snapshot.clone());
        let mut warm = checkpoint.warm.clone();
        let mut pipeline = Pipeline::new(self.config());
        let warm_commits = checkpoint.unit_start.saturating_sub(engine.position());
        let warm_run = pipeline.run(&mut warm, &mut engine, warm_commits, false);
        let measured = pipeline.run(&mut warm, &mut engine, params.unit_size, true);
        if measured.instructions < params.unit_size {
            return UnitReplay::Partial {
                detailed_warmed: warm_run.instructions,
                measured: measured.instructions,
            };
        }
        let cpi = measured.cpi();
        let epi = self
            .energy()
            .energy_per_instruction(&measured.counters, measured.cycles);
        UnitReplay::Complete {
            sample: Box::new(UnitSample {
                start_instr: checkpoint.unit_start,
                cycles: measured.cycles,
                instructions: measured.instructions,
                cpi,
                epi,
                counters: measured.counters,
            }),
            detailed_warmed: warm_run.instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_workloads::find;

    fn sim() -> SmartsSim {
        SmartsSim::new(MachineConfig::eight_way())
    }

    fn design(bench: &Benchmark, n: u64) -> SamplingParams {
        SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, n, 1)
            .unwrap()
    }

    #[test]
    fn library_replay_matches_direct_sampling() {
        let sim = sim();
        let bench = find("hashp-2").unwrap().scaled(0.1);
        let params = design(&bench, 15);
        let direct = sim.sample(&bench, &params).unwrap();
        let library = sim.build_library(&bench, &params).unwrap();
        let replay = sim.sample_library(&library).unwrap();
        assert_eq!(direct.sample_size(), replay.sample_size());
        // Units align exactly. Cycle counts may differ slightly: in the
        // direct run each detailed episode warms the shared state through
        // the pipeline's access stream, while the library warms everything
        // functionally — two equally legitimate warming histories (the
        // TurboSMARTS design point). Per-unit CPI must agree closely and
        // the aggregate even more so.
        for (a, b) in direct.units.iter().zip(&replay.units) {
            assert_eq!(a.start_instr, b.start_instr);
            let rel = (a.cpi - b.cpi).abs() / a.cpi;
            assert!(
                rel < 0.15,
                "unit at {}: direct {} vs replay {}",
                a.start_instr,
                a.cpi,
                b.cpi
            );
        }
        let agg = (direct.cpi().mean() - replay.cpi().mean()).abs() / direct.cpi().mean();
        assert!(agg < 0.02, "aggregate divergence {agg}");
        // The first unit is bit-identical: no detailed episode precedes
        // it, so both histories coincide.
        assert_eq!(direct.units[0].cycles, replay.units[0].cycles);
        assert_eq!(direct.units[0].counters, replay.units[0].counters);
        // The replay did no fast-forwarding at all.
        assert_eq!(replay.instructions.fast_forwarded, 0);
    }

    #[test]
    fn library_is_replayable_many_times() {
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.05);
        let params = design(&bench, 8);
        let library = sim.build_library(&bench, &params).unwrap();
        let a = sim.sample_library(&library).unwrap();
        let b = sim.sample_library(&library).unwrap();
        assert_eq!(a.cpi().mean(), b.cpi().mean());
    }

    #[test]
    fn library_replays_against_modified_pipeline_core() {
        // Same warm geometry, different core: halve the window and FUs.
        let sim8 = sim();
        let bench = find("branchy-1").unwrap().scaled(0.05);
        let params = design(&bench, 10);
        let library = sim8.build_library(&bench, &params).unwrap();

        let mut narrow = MachineConfig::eight_way();
        narrow.ruu_size = 32;
        narrow.lsq_size = 16;
        narrow.issue_width = 2;
        narrow.fetch_width = 2;
        narrow.decode_width = 2;
        narrow.commit_width = 2;
        narrow.int_alu_units = 1;
        let narrow_sim = SmartsSim::new(narrow);
        assert!(library.compatible_with(narrow_sim.config()));
        let wide = sim8.sample_library(&library).unwrap();
        let slim = narrow_sim.sample_library(&library).unwrap();
        assert!(
            slim.cpi().mean() > wide.cpi().mean() * 1.2,
            "narrow core {} should be slower than wide {}",
            slim.cpi().mean(),
            wide.cpi().mean()
        );
    }

    #[test]
    fn incompatible_geometry_is_rejected() {
        let sim8 = sim();
        let bench = find("loopy-1").unwrap().scaled(0.02);
        let library = sim8.build_library(&bench, &design(&bench, 5)).unwrap();
        let sim16 = SmartsSim::new(MachineConfig::sixteen_way());
        assert!(!library.compatible_with(sim16.config()));
        assert!(sim16.sample_library(&library).is_err());
    }

    #[test]
    fn streamed_checkpoints_replay_identically_to_the_library() {
        let sim = sim();
        let bench = find("branchy-1").unwrap().scaled(0.05);
        let params = design(&bench, 8);
        let library = sim.build_library(&bench, &params).unwrap();

        let loaded = bench.load();
        let program = loaded.program.clone();
        let mut streamed = Vec::new();
        let summary = sim
            .stream_checkpoints(loaded, &params, |c| {
                streamed.push(c);
                true
            })
            .unwrap();
        assert_eq!(summary.emitted as usize, library.len());
        assert!(!summary.stopped);
        let starts: Vec<u64> = streamed.iter().map(|c| c.unit_start()).collect();
        assert_eq!(starts, library.unit_starts().collect::<Vec<_>>());

        // Every streamed checkpoint replays bit-identically to its
        // library twin.
        for (index, checkpoint) in streamed.iter().enumerate() {
            let from_stream = sim.replay_checkpoint(&program, &params, checkpoint);
            let from_library = sim.replay_unit(&library, index).unwrap();
            match (from_stream, from_library) {
                (
                    UnitReplay::Complete { sample: a, .. },
                    UnitReplay::Complete { sample: b, .. },
                ) => {
                    assert_eq!(a.cycles, b.cycles);
                    assert_eq!(a.cpi.to_bits(), b.cpi.to_bits());
                    assert_eq!(a.counters, b.counters);
                }
                (
                    UnitReplay::Partial {
                        measured: a,
                        detailed_warmed: aw,
                    },
                    UnitReplay::Partial {
                        measured: b,
                        detailed_warmed: bw,
                    },
                ) => {
                    assert_eq!((a, aw), (b, bw));
                }
                _ => panic!("variant mismatch at unit {index}"),
            }
        }
    }

    #[test]
    fn stream_stops_when_the_consumer_declines() {
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.05);
        let params = design(&bench, 8);
        let mut taken = 0;
        let summary = sim
            .stream_checkpoints(bench.load(), &params, |_| {
                taken += 1;
                taken < 3
            })
            .unwrap();
        assert!(summary.stopped);
        assert_eq!(summary.emitted, 2, "the declined checkpoint is not counted");
    }

    #[test]
    fn library_residency_dedups_shared_pages() {
        let sim = sim();
        let bench = find("stream-2").unwrap().scaled(0.05);
        let params = design(&bench, 8);
        let library = sim.build_library(&bench, &params).unwrap();
        let deduped = library.approx_resident_bytes();
        // Summing per-checkpoint footprints ignores copy-on-write page
        // sharing between snapshots, so it must exceed the deduped total
        // for any multi-checkpoint library of this benchmark.
        let mut naive = 0u64;
        let mut per_unit_max = 0u64;
        let loaded = bench.load();
        sim.stream_checkpoints(loaded, &params, |c| {
            naive += c.approx_resident_bytes();
            per_unit_max = per_unit_max.max(c.approx_resident_bytes());
            true
        })
        .unwrap();
        assert!(deduped > 0);
        assert!(naive > deduped, "naive {naive} vs deduped {deduped}");
        // And a single checkpoint is far below the whole library.
        assert!(per_unit_max < deduped);
    }

    #[test]
    fn out_of_order_replay_is_bit_identical_to_in_order() {
        // The delta-resident library rebuilds warm state through a
        // cursor pool; replay order must not leak into results. Reverse
        // order forces worst-case chain rewinds (every materialisation
        // misses the pool and rolls forward from the base image).
        let sim = sim();
        let bench = find("hashp-2").unwrap().scaled(0.05);
        let params = design(&bench, 10);
        let library = sim.build_library(&bench, &params).unwrap();
        let forward: Vec<UnitReplay> = (0..library.len())
            .map(|i| sim.replay_unit(&library, i).unwrap())
            .collect();
        for index in (0..library.len()).rev() {
            let again = sim.replay_unit(&library, index).unwrap();
            match (&forward[index], &again) {
                (
                    UnitReplay::Complete { sample: a, .. },
                    UnitReplay::Complete { sample: b, .. },
                ) => {
                    assert_eq!(a.cycles, b.cycles, "unit {index}");
                    assert_eq!(a.cpi.to_bits(), b.cpi.to_bits(), "unit {index}");
                    assert_eq!(a.counters, b.counters, "unit {index}");
                }
                (
                    UnitReplay::Partial {
                        measured: a,
                        detailed_warmed: aw,
                    },
                    UnitReplay::Partial {
                        measured: b,
                        detailed_warmed: bw,
                    },
                ) => assert_eq!((a, aw), (b, bw), "unit {index}"),
                _ => panic!("variant mismatch at unit {index}"),
            }
        }
    }

    #[test]
    fn delta_residency_is_far_below_per_unit_warm_copies() {
        // The pre-delta representation held one full warm-state copy per
        // unit; the delta chain must beat that comfortably once the
        // library has more than a handful of units.
        let sim = sim();
        let bench = find("loopy-1").unwrap().scaled(0.1);
        let params = design(&bench, 12);
        let library = sim.build_library(&bench, &params).unwrap();
        let mut eager_warm = 0u64;
        let mut pages = std::collections::HashSet::new();
        let mut deduped_pages = 0u64;
        sim.stream_checkpoints(bench.load(), &params, |c| {
            let mut w = Vec::new();
            c.warm().save_state(&mut w);
            eager_warm += 8 * w.len() as u64;
            deduped_pages += c.snapshot().memory_resident_bytes_dedup(&mut pages) as u64;
            true
        })
        .unwrap();
        let eager = eager_warm + deduped_pages;
        let delta = library.approx_resident_bytes();
        assert!(
            delta * 2 < eager,
            "delta-resident {delta} should be well below eager {eager}"
        );
    }

    #[test]
    fn library_len_matches_design() {
        let sim = sim();
        let bench = find("stream-2").unwrap().scaled(0.1);
        let params = design(&bench, 12);
        let library = sim.build_library(&bench, &params).unwrap();
        assert!(!library.is_empty());
        assert!(
            (10..=16).contains(&library.len()),
            "len = {}",
            library.len()
        );
    }
}

use std::error::Error;
use std::fmt;

/// Error type for SMARTS sampling-run configuration and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SmartsError {
    /// A sampling parameter (U, k, n) must be nonzero.
    ZeroParameter(&'static str),
    /// The unit offset `j` must be below the sampling interval `k`.
    OffsetOutOfRange {
        /// Supplied offset in units.
        offset: u64,
        /// Sampling interval in units.
        interval: u64,
    },
    /// The benchmark stream ended before any sampling unit was measured.
    EmptySample,
    /// An underlying statistics error (invalid confidence arguments).
    Stats(smarts_stats::StatsError),
    /// Functional execution failed (a malformed program).
    Isa(smarts_isa::IsaError),
}

impl fmt::Display for SmartsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmartsError::ZeroParameter(name) => {
                write!(f, "sampling parameter `{name}` must be nonzero")
            }
            SmartsError::OffsetOutOfRange { offset, interval } => {
                write!(
                    f,
                    "unit offset {offset} is not below the sampling interval {interval}"
                )
            }
            SmartsError::EmptySample => {
                write!(
                    f,
                    "benchmark stream ended before any sampling unit was measured"
                )
            }
            SmartsError::Stats(e) => write!(f, "statistics error: {e}"),
            SmartsError::Isa(e) => write!(f, "functional execution error: {e}"),
        }
    }
}

impl Error for SmartsError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SmartsError::Stats(e) => Some(e),
            SmartsError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<smarts_stats::StatsError> for SmartsError {
    fn from(e: smarts_stats::StatsError) -> Self {
        SmartsError::Stats(e)
    }
}

#[doc(hidden)]
impl From<smarts_isa::IsaError> for SmartsError {
    fn from(e: smarts_isa::IsaError) -> Self {
        SmartsError::Isa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SmartsError::Stats(smarts_stats::StatsError::InvalidErrorTarget(-1.0));
        assert!(e.to_string().contains("statistics"));
        assert!(e.source().is_some());
        assert!(SmartsError::EmptySample.source().is_none());
    }
}

//! The SMARTS systematic sampling driver (Sections 3.1 and 5.1).

use std::fmt;
use std::time::{Duration, Instant};

use crate::engine::FunctionalEngine;
use crate::error::SmartsError;
use smarts_energy::{ActivityCounters, EnergyModel};
use smarts_stats::{Confidence, RunningStats, SampleEstimate};
use smarts_uarch::{MachineConfig, Pipeline, WarmState};
use smarts_workloads::{Benchmark, Loaded};

/// How microarchitectural state is maintained between sampling units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Warming {
    /// Plain fast-forwarding: caches, TLBs, and the branch predictor go
    /// stale between units and must be rebuilt by detailed warming alone.
    None,
    /// Functional warming: the long-history state is updated for every
    /// fast-forwarded instruction (the paper's recommended mode).
    Functional,
}

/// Parameters of one systematic sampling simulation run (Figure 1).
///
/// # Examples
///
/// ```
/// use smarts_core::{SamplingParams, Warming};
///
/// # fn main() -> Result<(), smarts_core::SmartsError> {
/// // U = 1000, W = 2000, functional warming, n ≈ 30 over a 3M stream.
/// let params = SamplingParams::for_sample_size(3_000_000, 1000, 2000, Warming::Functional, 30, 0)?;
/// assert_eq!(params.interval, 100);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingParams {
    /// Sampling unit size `U` in instructions.
    pub unit_size: u64,
    /// Detailed warming `W` in instructions before each unit.
    pub detailed_warming: u64,
    /// Fast-forward warming mode.
    pub warming: Warming,
    /// Systematic sampling interval `k` in units.
    pub interval: u64,
    /// Phase offset `j` in units, `0 ≤ j < k`.
    pub offset: u64,
    /// Measure at most this many units (`None` = to end of stream).
    pub max_units: Option<u64>,
}

impl SamplingParams {
    /// Builds parameters that target a sample of about `n` units over a
    /// stream of approximately `stream_len` instructions:
    /// `k = max(1, ⌊N/n⌋)` with `N = stream_len / U`.
    ///
    /// The run is *not* capped at `n` units: systematic sampling covers
    /// the entire stream at interval `k`, so the realized sample size is
    /// `⌈N_true/k⌉` and tracks the true stream length even when
    /// `stream_len` is only an estimate. (Capping at `n` would silently
    /// exclude the tail of the stream — a coverage bias.)
    ///
    /// The interval is additionally floored at `⌈W/U⌉ + 2` so consecutive
    /// units keep a positive fast-forward gap. Below that, units abut and
    /// the pipeline's fetch overshoot past one unit would skip into the
    /// next — a selection bias correlated with unit cost. The paper's
    /// designs (k ≈ 10³–10⁵) never approach this floor; it only binds
    /// when a tuned `n` demands more units than a short stream can
    /// provide, in which case the realized confidence interval honestly
    /// reports the shortfall.
    ///
    /// # Errors
    ///
    /// Returns an error when `unit_size` or `n` is zero, or `offset`
    /// is not below the computed interval.
    pub fn for_sample_size(
        stream_len: u64,
        unit_size: u64,
        detailed_warming: u64,
        warming: Warming,
        n: u64,
        offset: u64,
    ) -> Result<Self, SmartsError> {
        if unit_size == 0 {
            return Err(SmartsError::ZeroParameter("unit_size"));
        }
        if n == 0 {
            return Err(SmartsError::ZeroParameter("n"));
        }
        let population = (stream_len / unit_size).max(1);
        let min_interval = detailed_warming.div_ceil(unit_size) + 2;
        let interval = (population / n).max(min_interval);
        let params = SamplingParams {
            unit_size,
            detailed_warming,
            warming,
            interval,
            offset,
            max_units: None,
        };
        params.validate()?;
        Ok(params)
    }

    /// The paper's recommended operating point for a machine: `U = 1000`,
    /// `W` from [`MachineConfig::recommended_detailed_warming`] (2000 /
    /// 4000 instructions), functional warming.
    pub fn paper_defaults(
        cfg: &MachineConfig,
        stream_len: u64,
        n: u64,
    ) -> Result<Self, SmartsError> {
        SamplingParams::for_sample_size(
            stream_len,
            1000,
            cfg.recommended_detailed_warming(),
            Warming::Functional,
            n,
            0,
        )
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error when `unit_size` or `interval` is zero, or
    /// `offset ≥ interval`.
    pub fn validate(&self) -> Result<(), SmartsError> {
        if self.unit_size == 0 {
            return Err(SmartsError::ZeroParameter("unit_size"));
        }
        if self.interval == 0 {
            return Err(SmartsError::ZeroParameter("interval"));
        }
        if self.offset >= self.interval {
            return Err(SmartsError::OffsetOutOfRange {
                offset: self.offset,
                interval: self.interval,
            });
        }
        Ok(())
    }

    /// A copy with a different phase offset (for bias estimation over
    /// multiple systematic phases, Section 4.3).
    ///
    /// # Errors
    ///
    /// Returns an error when `offset ≥ interval`.
    pub fn with_offset(&self, offset: u64) -> Result<Self, SmartsError> {
        let params = SamplingParams { offset, ..*self };
        params.validate()?;
        Ok(params)
    }

    /// Detailed instructions one replayed unit costs under this design:
    /// `W + U` — the currency the CI-efficiency comparisons trade in.
    pub fn detailed_per_unit(&self) -> u64 {
        self.detailed_warming + self.unit_size
    }
}

/// Which unit-selection strategy a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SamplerKind {
    /// The paper's fixed-`n` systematic design (the default; its reports
    /// stay bit-identical to the pre-trait code path).
    #[default]
    Systematic,
    /// Two-phase stratified selection: pilot → cluster → Neyman top-up.
    Stratified,
    /// Online adaptive stopping: variance-greedy batches until the
    /// running CI meets the target.
    Adaptive,
}

impl SamplerKind {
    /// Stable lowercase tag used in flags, job specs, and cache keys.
    pub fn tag(&self) -> &'static str {
        match self {
            SamplerKind::Systematic => "systematic",
            SamplerKind::Stratified => "stratified",
            SamplerKind::Adaptive => "adaptive",
        }
    }
}

impl fmt::Display for SamplerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

impl std::str::FromStr for SamplerKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "systematic" => Ok(SamplerKind::Systematic),
            "stratified" => Ok(SamplerKind::Stratified),
            "adaptive" => Ok(SamplerKind::Adaptive),
            other => Err(format!(
                "unknown sampler `{other}` (expected systematic, stratified, or adaptive)"
            )),
        }
    }
}

/// Full specification of a unit-selection strategy — everything beyond
/// [`SamplingParams`] that determines *which* warmed units get detailed
/// replay. Two runs over the same store with equal specs select the
/// same units; this is the struct the results cache must key on.
///
/// The warming design stays in [`SamplingParams`] (and in the store
/// fingerprint) unchanged: a spec only picks among the units a store
/// already holds, so one warmed store serves every spec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplerSpec {
    /// The selection strategy.
    pub kind: SamplerKind,
    /// Seed for the randomized phases (pilot offset, within-stratum
    /// draws). Ignored by [`SamplerKind::Systematic`].
    pub seed: u64,
    /// Stratum count for the stratified/adaptive strategies.
    pub strata: u32,
    /// Pilot size in units; 0 selects the automatic `max(30, pool/32)`.
    pub pilot: u64,
    /// Relative CI half-width target (the paper's ±3% is 0.03).
    pub epsilon: f64,
    /// Confidence level of the target (the paper's 99.7% is 0.9973).
    pub confidence: f64,
}

impl Default for SamplerSpec {
    fn default() -> Self {
        SamplerSpec::systematic()
    }
}

impl SamplerSpec {
    /// The systematic spec: selection is fully determined by
    /// [`SamplingParams`], every other field is inert.
    pub fn systematic() -> Self {
        SamplerSpec {
            kind: SamplerKind::Systematic,
            seed: 0,
            strata: 4,
            pilot: 0,
            epsilon: 0.03,
            confidence: 0.9973,
        }
    }

    /// Whether this is the systematic strategy (the bit-identical
    /// legacy path).
    pub fn is_systematic(&self) -> bool {
        self.kind == SamplerKind::Systematic
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns an error for a non-positive `epsilon`, a confidence level
    /// outside `(0, 1)`, or zero `strata` on a non-systematic kind.
    pub fn validate(&self) -> Result<(), SmartsError> {
        if self.is_systematic() {
            return Ok(());
        }
        if !self.epsilon.is_finite() || self.epsilon <= 0.0 {
            return Err(SmartsError::ZeroParameter("sampler epsilon"));
        }
        if !(self.confidence > 0.0 && self.confidence < 1.0) {
            return Err(SmartsError::ZeroParameter("sampler confidence"));
        }
        if self.strata == 0 {
            return Err(SmartsError::ZeroParameter("sampler strata"));
        }
        Ok(())
    }

    /// Builds the runnable [`Sampler`](smarts_stats::Sampler) for a pool
    /// of `pool` warmed units.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid spec or a zero pool.
    pub fn build(&self, pool: u64) -> Result<Box<dyn smarts_stats::Sampler>, SmartsError> {
        self.validate()?;
        let confidence = Confidence::new(self.confidence)?;
        let cfg = smarts_stats::StratifiedConfig {
            pool,
            pilot: self.pilot,
            strata: self.strata as usize,
            epsilon: self.epsilon,
            confidence,
            seed: self.seed,
            max_units: None,
        };
        Ok(match self.kind {
            SamplerKind::Systematic => Box::new(smarts_stats::SystematicSampler::new(
                pool,
                pool,
                0,
                self.epsilon,
                confidence,
            )?),
            SamplerKind::Stratified => Box::new(smarts_stats::StratifiedSampler::new(cfg)?),
            SamplerKind::Adaptive => Box::new(smarts_stats::AdaptiveSampler::new(cfg, 0)?),
        })
    }

    /// A 64-bit key separating every selection-relevant field — what the
    /// server results cache folds into its lookup so jobs differing only
    /// in sampling design never alias. The systematic spec always maps
    /// to the same key (its extra fields are inert), preserving cache
    /// hits across cosmetic spec differences.
    pub fn cache_key(&self) -> u64 {
        fn mix(h: u64, v: u64) -> u64 {
            let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let h = mix(0x5341_4D50_4C45_5253, self.kind as u64); // "SAMPLERS"
        if self.is_systematic() {
            return h;
        }
        let h = mix(h, self.seed);
        let h = mix(h, self.strata as u64);
        let h = mix(h, self.pilot);
        let h = mix(h, self.epsilon.to_bits());
        mix(h, self.confidence.to_bits())
    }
}

impl fmt::Display for SamplerSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_systematic() {
            write!(f, "systematic")
        } else {
            write!(
                f,
                "{} seed={} strata={} pilot={} ±{:.3}% @ {:.2}%",
                self.kind,
                self.seed,
                self.strata,
                self.pilot,
                self.epsilon * 100.0,
                self.confidence * 100.0
            )
        }
    }
}

/// One measured sampling unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitSample {
    /// Stream offset (in instructions) at which measurement began.
    pub start_instr: u64,
    /// Cycles taken by the measured `U` instructions.
    pub cycles: u64,
    /// Instructions measured (always `U` for recorded units).
    pub instructions: u64,
    /// CPI of the unit.
    pub cpi: f64,
    /// Energy per instruction of the unit, in nanojoules.
    pub epi: f64,
    /// Full activity counters of the measured window, enabling estimation
    /// of any derived per-unit metric (Section 3: the framework "is
    /// generally applicable to other performance metrics").
    pub counters: ActivityCounters,
}

impl UnitSample {
    /// Events per kilo-instruction for an arbitrary counter projection.
    pub fn per_kilo_instruction(&self, events: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            events as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// Conditional-branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        self.per_kilo_instruction(self.counters.branch_mispredicts)
    }

    /// L1-miss traffic (L2 lookups) per kilo-instruction.
    pub fn l2_traffic_pki(&self) -> f64 {
        self.per_kilo_instruction(self.counters.l2_accesses)
    }

    /// Main-memory accesses per kilo-instruction.
    pub fn memory_pki(&self) -> f64 {
        self.per_kilo_instruction(self.counters.mem_accesses)
    }

    /// Issued instructions per cycle (window utilization).
    pub fn issue_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.counters.window_issues as f64 / self.cycles as f64
        }
    }
}

/// Instruction counts by simulation mode for one sampling run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeInstructions {
    /// Instructions fast-forwarded (with or without functional warming).
    pub fast_forwarded: u64,
    /// Instructions simulated in detail without measurement (`n·W`).
    pub detailed_warmed: u64,
    /// Instructions simulated in detail and measured (`n·U`).
    pub measured: u64,
}

impl ModeInstructions {
    /// Total instructions consumed from the stream.
    pub fn total(&self) -> u64 {
        self.fast_forwarded + self.detailed_warmed + self.measured
    }

    /// Fraction of the consumed stream simulated in detail.
    pub fn detailed_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            (self.detailed_warmed + self.measured) as f64 / total as f64
        }
    }
}

/// The result of one SMARTS sampling simulation: per-unit measurements,
/// aggregate estimates, and cost accounting.
#[derive(Debug, Clone)]
pub struct SampleReport {
    /// Parameters the run used.
    pub params: SamplingParams,
    /// Per-unit measurements in stream order.
    pub units: Vec<UnitSample>,
    /// Instruction counts by mode.
    pub instructions: ModeInstructions,
    /// Wall-clock spent fast-forwarding (functional ± warming).
    pub wall_functional: Duration,
    /// Wall-clock spent in detailed simulation (warming + measurement).
    pub wall_detailed: Duration,
    cpi_stats: RunningStats,
    epi_stats: RunningStats,
}

impl SampleReport {
    /// Builds a report by re-accumulating per-unit estimates in stream
    /// order.
    ///
    /// This is the deterministic merge anchor for parallel execution
    /// (`smarts-exec`): the CPI/EPI accumulators are fed one unit at a
    /// time in exactly the order the sequential driver would, so a report
    /// assembled from concurrently-measured units is bit-identical to the
    /// sequential one. `units` must already be sorted by `start_instr`.
    pub fn from_units(
        params: SamplingParams,
        units: Vec<UnitSample>,
        instructions: ModeInstructions,
        wall_functional: Duration,
        wall_detailed: Duration,
    ) -> Self {
        let mut cpi_stats = RunningStats::new();
        let mut epi_stats = RunningStats::new();
        for unit in &units {
            cpi_stats.push(unit.cpi);
            epi_stats.push(unit.epi);
        }
        SampleReport {
            params,
            units,
            instructions,
            wall_functional,
            wall_detailed,
            cpi_stats,
            epi_stats,
        }
    }

    /// Number of measured sampling units `n`.
    pub fn sample_size(&self) -> u64 {
        self.units.len() as u64
    }

    /// The CPI estimate with its dispersion information.
    pub fn cpi(&self) -> SampleEstimate {
        SampleEstimate::from_stats(&self.cpi_stats)
    }

    /// The EPI estimate (nJ/instruction) with its dispersion information.
    pub fn epi(&self) -> SampleEstimate {
        SampleEstimate::from_stats(&self.epi_stats)
    }

    /// Per-unit CPI values in stream order.
    pub fn unit_cpis(&self) -> impl Iterator<Item = f64> + '_ {
        self.units.iter().map(|u| u.cpi)
    }

    /// Builds a confidence-quantified estimate of *any* per-unit metric —
    /// the Section 3 generalization beyond CPI. The closure maps one
    /// measured unit to the metric value; the returned estimate carries
    /// the measured coefficient of variation so the usual interval and
    /// `required_n` machinery applies.
    ///
    /// # Examples
    ///
    /// ```
    /// # use smarts_core::{SamplingParams, SmartsSim, Warming};
    /// # use smarts_uarch::MachineConfig;
    /// # use smarts_workloads::find;
    /// # fn main() -> Result<(), smarts_core::SmartsError> {
    /// # let sim = SmartsSim::new(MachineConfig::eight_way());
    /// # let bench = find("branchy-1").unwrap().scaled(0.02);
    /// # let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 5)?;
    /// let report = sim.sample(&bench, &params)?;
    /// let mpki = report.estimate_metric(|unit| unit.branch_mpki());
    /// assert!(mpki.mean() >= 0.0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn estimate_metric<F>(&self, metric: F) -> SampleEstimate
    where
        F: FnMut(&UnitSample) -> f64,
    {
        let stats: RunningStats = self.units.iter().map(metric).collect();
        SampleEstimate::from_stats(&stats)
    }

    /// Estimate of conditional-branch mispredictions per kilo-instruction.
    pub fn branch_mpki(&self) -> SampleEstimate {
        self.estimate_metric(UnitSample::branch_mpki)
    }

    /// Estimate of main-memory accesses per kilo-instruction.
    pub fn memory_pki(&self) -> SampleEstimate {
        self.estimate_metric(UnitSample::memory_pki)
    }

    /// The tuned sample size for a follow-up run, or `None` if this run
    /// already meets the `±epsilon` target at the given confidence
    /// (the second step of the Section 5.1 procedure).
    ///
    /// # Errors
    ///
    /// Propagates invalid `epsilon`/confidence arguments.
    pub fn recommended_n(
        &self,
        epsilon: f64,
        confidence: Confidence,
    ) -> Result<Option<u64>, SmartsError> {
        let estimate = self.cpi();
        if estimate.meets(epsilon, confidence)? {
            Ok(None)
        } else {
            Ok(Some(estimate.required_n(epsilon, confidence)?))
        }
    }

    /// Total wall-clock of the run.
    pub fn wall_total(&self) -> Duration {
        self.wall_functional + self.wall_detailed
    }
}

impl fmt::Display for SampleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} CPI {} EPI {} detail-fraction {:.4}%",
            self.sample_size(),
            self.cpi(),
            self.epi(),
            self.instructions.detailed_fraction() * 100.0
        )
    }
}

/// The SMARTS sampling simulator: a machine configuration plus an energy
/// model, able to run sampling simulations and full-detail references.
///
/// # Examples
///
/// ```
/// use smarts_core::{SamplingParams, SmartsSim, Warming};
/// use smarts_uarch::MachineConfig;
/// use smarts_workloads::find;
///
/// # fn main() -> Result<(), smarts_core::SmartsError> {
/// let sim = SmartsSim::new(MachineConfig::eight_way());
/// let bench = find("loopy-1").unwrap().scaled(0.05);
/// let params = SamplingParams::for_sample_size(
///     bench.approx_len(), 1000, 2000, Warming::Functional, 10, 0)?;
/// let report = sim.sample(&bench, &params)?;
/// assert!(report.sample_size() > 0);
/// assert!(report.cpi().mean() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SmartsSim {
    cfg: MachineConfig,
    energy: EnergyModel,
}

impl SmartsSim {
    /// Creates a simulator, selecting the energy preset matching the
    /// machine width.
    pub fn new(cfg: MachineConfig) -> Self {
        let energy = if cfg.fetch_width >= 16 {
            EnergyModel::sixteen_way()
        } else {
            EnergyModel::eight_way()
        };
        SmartsSim { cfg, energy }
    }

    /// Replaces the energy model.
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The energy model.
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// Runs one systematic sampling simulation over a benchmark.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters, or
    /// [`SmartsError::EmptySample`] when the stream ends before the first
    /// unit completes.
    pub fn sample(
        &self,
        bench: &Benchmark,
        params: &SamplingParams,
    ) -> Result<SampleReport, SmartsError> {
        self.sample_loaded(bench.load(), params)
    }

    /// Runs one systematic sampling simulation over an already-loaded
    /// benchmark image.
    ///
    /// # Errors
    ///
    /// As for [`SmartsSim::sample`].
    pub fn sample_loaded<I: smarts_isa::Isa>(
        &self,
        loaded: Loaded<I>,
        params: &SamplingParams,
    ) -> Result<SampleReport, SmartsError> {
        params.validate()?;
        let u = params.unit_size;
        let w = params.detailed_warming;
        let k = params.interval;

        let mut engine = FunctionalEngine::new(loaded);
        let mut warm = WarmState::new(&self.cfg);
        let mut units = Vec::new();
        let mut cpi_stats = RunningStats::new();
        let mut epi_stats = RunningStats::new();
        let mut instructions = ModeInstructions::default();
        let mut wall_functional = Duration::ZERO;
        let mut wall_detailed = Duration::ZERO;

        let mut unit_index = params.offset;
        loop {
            if let Some(max) = params.max_units {
                if units.len() as u64 >= max {
                    break;
                }
            }
            let unit_start = unit_index * u;
            if engine.position() >= unit_start + u {
                // The pipeline overshot past this entire unit (only
                // possible for tiny k); skip to the next one.
                unit_index += k;
                continue;
            }
            let warm_start = unit_start.saturating_sub(w);

            let t0 = Instant::now();
            let ff = match params.warming {
                Warming::None => engine.fast_forward(warm_start),
                Warming::Functional => engine.fast_forward_warming(warm_start, &mut warm),
            };
            wall_functional += t0.elapsed();
            instructions.fast_forwarded += ff;
            if engine.finished() {
                break;
            }

            let t1 = Instant::now();
            let mut pipeline = Pipeline::new(&self.cfg);
            let warm_commits = unit_start.saturating_sub(engine.position());
            let warm_run = pipeline.run(&mut warm, &mut engine, warm_commits, false);
            let measured = pipeline.run(&mut warm, &mut engine, u, true);
            wall_detailed += t1.elapsed();
            instructions.detailed_warmed += warm_run.instructions;

            if measured.instructions < u {
                // Partial unit at end of stream: excluded from the sample,
                // consistent with a population of ⌊stream/U⌋ whole units.
                instructions.measured += measured.instructions;
                break;
            }
            instructions.measured += measured.instructions;
            let cpi = measured.cpi();
            let epi = self
                .energy
                .energy_per_instruction(&measured.counters, measured.cycles);
            cpi_stats.push(cpi);
            epi_stats.push(epi);
            units.push(UnitSample {
                start_instr: unit_start,
                cycles: measured.cycles,
                instructions: measured.instructions,
                cpi,
                epi,
                counters: measured.counters,
            });
            unit_index += k;
        }

        if units.is_empty() {
            return Err(SmartsError::EmptySample);
        }
        Ok(SampleReport {
            params: *params,
            units,
            instructions,
            wall_functional,
            wall_detailed,
            cpi_stats,
            epi_stats,
        })
    }

    /// Runs the paper's two-step procedure (Section 5.1): one run at
    /// `n_init`; if the achieved interval misses `±epsilon` at the given
    /// confidence, a second run at `n_tuned = (z·V̂/ε)²`.
    ///
    /// # Errors
    ///
    /// As for [`SmartsSim::sample`], plus invalid `epsilon`/confidence.
    pub fn sample_two_step(
        &self,
        bench: &Benchmark,
        params: &SamplingParams,
        epsilon: f64,
        confidence: Confidence,
    ) -> Result<TwoStepOutcome, SmartsError> {
        let initial = self.sample(bench, params)?;
        match initial.recommended_n(epsilon, confidence)? {
            None => Ok(TwoStepOutcome {
                initial,
                tuned: None,
            }),
            Some(n_tuned) => {
                let retuned = SamplingParams::for_sample_size(
                    bench.approx_len(),
                    params.unit_size,
                    params.detailed_warming,
                    params.warming,
                    n_tuned,
                    0, // the tuned run's interval shrinks; restart at phase 0
                )?;
                let tuned = self.sample(bench, &retuned)?;
                Ok(TwoStepOutcome {
                    initial,
                    tuned: Some(tuned),
                })
            }
        }
    }
}

/// Result of the two-step confidence procedure.
#[derive(Debug, Clone)]
pub struct TwoStepOutcome {
    /// The `n_init` run.
    pub initial: SampleReport,
    /// The `n_tuned` run, when the initial confidence was insufficient.
    pub tuned: Option<SampleReport>,
}

impl TwoStepOutcome {
    /// The report that should be used for the final estimate.
    pub fn best(&self) -> &SampleReport {
        self.tuned.as_ref().unwrap_or(&self.initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_workloads::find;

    fn sim() -> SmartsSim {
        SmartsSim::new(MachineConfig::eight_way())
    }

    #[test]
    fn params_validation() {
        assert!(SamplingParams::for_sample_size(1_000_000, 0, 0, Warming::None, 10, 0).is_err());
        assert!(SamplingParams::for_sample_size(1_000_000, 1000, 0, Warming::None, 0, 0).is_err());
        // offset beyond interval
        let err = SamplingParams::for_sample_size(10_000, 1000, 0, Warming::None, 10, 5);
        assert!(err.is_err());
    }

    #[test]
    fn sampling_measures_requested_units() {
        let bench = find("loopy-1").unwrap().scaled(0.1); // ~360k instrs
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            20,
            0,
        )
        .unwrap();
        let report = sim().sample(&bench, &params).unwrap();
        assert_eq!(report.sample_size(), 20);
        for unit in &report.units {
            assert_eq!(unit.instructions, 1000);
            assert!(unit.cpi > 0.0);
            assert!(unit.epi > 0.0);
        }
        // Units are k·U apart.
        let starts: Vec<u64> = report.units.iter().map(|u| u.start_instr).collect();
        let k = params.interval;
        for pair in starts.windows(2) {
            assert_eq!(pair[1] - pair[0], k * 1000);
        }
    }

    #[test]
    fn detailed_fraction_is_small() {
        let bench = find("loopy-1").unwrap().scaled(0.1);
        let params =
            SamplingParams::paper_defaults(sim().config(), bench.approx_len(), 10).unwrap();
        let report = sim().sample(&bench, &params).unwrap();
        assert!(
            report.instructions.detailed_fraction() < 0.2,
            "fraction = {}",
            report.instructions.detailed_fraction()
        );
        assert!(report.instructions.fast_forwarded > 0);
    }

    #[test]
    fn homogeneous_benchmark_has_tiny_cv() {
        let bench = find("loopy-1").unwrap().scaled(0.1);
        // Offset 1 skips the cold-start unit at instruction 0, which is
        // measured before any state has warmed (visible initialization
        // bias, exactly the effect Section 4 studies).
        let params = SamplingParams::paper_defaults(sim().config(), bench.approx_len(), 15)
            .unwrap()
            .with_offset(1)
            .unwrap();
        let report = sim().sample(&bench, &params).unwrap();
        assert!(
            report.cpi().coefficient_of_variation() < 0.1,
            "V = {}",
            report.cpi().coefficient_of_variation()
        );
        // Therefore it meets ±3% @ 99.7% immediately.
        assert_eq!(
            report.recommended_n(0.03, Confidence::THREE_SIGMA).unwrap(),
            None
        );
    }

    #[test]
    fn offset_shifts_unit_starts() {
        let bench = find("branchy-1").unwrap().scaled(0.1);
        let base = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            1000,
            Warming::Functional,
            8,
            0,
        )
        .unwrap();
        let shifted = base.with_offset(3).unwrap();
        let r0 = sim().sample(&bench, &base).unwrap();
        let r3 = sim().sample(&bench, &shifted).unwrap();
        assert_eq!(r3.units[0].start_instr - r0.units[0].start_instr, 3 * 1000);
    }

    #[test]
    fn empty_sample_is_an_error() {
        let bench = find("loopy-1").unwrap().scaled(0.01); // ~36k instrs
                                                           // Offset far beyond the stream end.
        let params = SamplingParams {
            unit_size: 1000,
            detailed_warming: 0,
            warming: Warming::None,
            interval: 1_000_000,
            offset: 999_999,
            max_units: Some(1),
        };
        assert_eq!(
            sim().sample(&bench, &params).unwrap_err(),
            SmartsError::EmptySample
        );
    }

    #[test]
    fn two_step_returns_tuned_run_for_demanding_targets() {
        let bench = find("hashp-2").unwrap().scaled(0.2);
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            8, // deliberately tiny n_init
            0,
        )
        .unwrap();
        // An extremely tight target that 8 units cannot meet.
        let outcome = sim()
            .sample_two_step(&bench, &params, 0.001, Confidence::THREE_SIGMA)
            .unwrap();
        assert!(outcome.tuned.is_some());
        let tuned = outcome.best();
        assert!(tuned.sample_size() > outcome.initial.sample_size());
    }

    #[test]
    fn mode_instructions_accounting_is_consistent() {
        let bench = find("stream-2").unwrap().scaled(0.2);
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            500,
            1000,
            Warming::Functional,
            10,
            0,
        )
        .unwrap();
        let report = sim().sample(&bench, &params).unwrap();
        let m = &report.instructions;
        assert_eq!(m.measured, report.sample_size() * 500);
        assert!(report.sample_size() >= 9, "close to the requested 10 units");
        assert!(m.detailed_warmed <= report.sample_size() * 1000);
        assert!(m.fast_forwarded > m.measured, "fast-forwarding dominates");
    }
}

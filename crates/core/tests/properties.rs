//! Property-based tests of the sampling driver's invariants.

use proptest::prelude::*;
use smarts_core::{SamplingParams, SmartsSim, Warming};
use smarts_uarch::MachineConfig;
use smarts_workloads::find;

fn sim() -> SmartsSim {
    SmartsSim::new(MachineConfig::eight_way())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn sampling_invariants_hold_for_any_design(
        unit_size in prop_oneof![Just(250u64), Just(500), Just(1000), Just(2000)],
        w in prop_oneof![Just(0u64), Just(500), Just(2000)],
        n in 3u64..12,
        offset in 0u64..3,
        functional in proptest::bool::ANY,
    ) {
        let bench = find("branchy-1").unwrap().scaled(0.05);
        let warming = if functional { Warming::Functional } else { Warming::None };
        let params = SamplingParams::for_sample_size(
            bench.approx_len(), unit_size, w, warming, n, 0,
        ).unwrap();
        let Ok(params) = params.with_offset(offset.min(params.interval - 1)) else {
            return Ok(());
        };
        let report = sim().sample(&bench, &params).unwrap();

        // Units are aligned on the systematic grid.
        let stride = params.interval * unit_size;
        for unit in &report.units {
            prop_assert_eq!(
                (unit.start_instr / unit_size) % params.interval,
                params.offset
            );
            prop_assert_eq!(unit.instructions, unit_size);
            prop_assert!(unit.cpi > 0.0 && unit.cpi.is_finite());
            prop_assert!(unit.epi > 0.0 && unit.epi.is_finite());
        }
        for pair in report.units.windows(2) {
            prop_assert_eq!(pair[1].start_instr - pair[0].start_instr, stride);
        }

        // Accounting: measured = n·U; detailed warming ≤ n·W; the total
        // consumed never exceeds the stream (pipeline overshoot ≤ one
        // window per unit).
        let m = &report.instructions;
        // A trailing partial unit contributes measured instructions
        // without being recorded as a sample, so allow up to U extra.
        prop_assert!(m.measured >= report.sample_size() * unit_size);
        prop_assert!(m.measured < (report.sample_size() + 1) * unit_size);
        prop_assert!(m.detailed_warmed <= (report.sample_size() + 1) * w.max(1));
        prop_assert!((0.0..=1.0).contains(&m.detailed_fraction()));

        // The estimate is a plain average of per-unit values.
        let mean: f64 =
            report.units.iter().map(|u| u.cpi).sum::<f64>() / report.sample_size() as f64;
        prop_assert!((report.cpi().mean() - mean).abs() < 1e-12);
    }

    #[test]
    fn warming_mode_never_changes_which_units_are_measured(
        n in 4u64..10,
        offset in 0u64..2,
    ) {
        let bench = find("hashp-2").unwrap().scaled(0.05);
        let build = |warming| {
            SamplingParams::for_sample_size(bench.approx_len(), 1000, 1000, warming, n, offset)
                .unwrap()
        };
        let cold = sim().sample(&bench, &build(Warming::None)).unwrap();
        let warm = sim().sample(&bench, &build(Warming::Functional)).unwrap();
        prop_assert_eq!(cold.sample_size(), warm.sample_size());
        for (a, b) in cold.units.iter().zip(&warm.units) {
            prop_assert_eq!(a.start_instr, b.start_instr);
        }
    }
}

//! Cross-model equivalence: the event-driven [`Pipeline`] must be
//! bit-identical to the scan-based reference [`ScanPipeline`] — same
//! cycles, same committed instructions, same activity counters, and the
//! same warm-state mutations (cache/TLB/predictor traffic happens in the
//! same order, so every derived statistic matches exactly).
//!
//! Programs are SplitMix64-random (assembled control flow, dependent ALU
//! chains, unpipelined divides, strided and chasing memory traffic,
//! data-dependent branches) and run on 2-, 4-, and 8-wide machines so
//! narrow structural hazards (single cache port, two MSHRs, tiny store
//! buffer) and wide ones are both covered. Failures reproduce from the
//! fixed seeds.

use smarts_isa::{reg, Asm, Cpu, ExecRecord, Memory, Program};
use smarts_uarch::{
    MachineConfig, Pipeline, ScanPipeline, TraceSource, UnitMeasurement, WarmState,
};
use smarts_workloads::SplitMix64;

/// Functional CPU wrapped as a trace source.
struct CpuSource {
    cpu: Cpu,
    mem: Memory,
    program: Program,
}

impl CpuSource {
    fn new(program: Program) -> Self {
        CpuSource {
            cpu: Cpu::new(),
            mem: Memory::new(),
            program,
        }
    }
}

impl TraceSource for CpuSource {
    fn next_record(&mut self) -> Option<ExecRecord> {
        if self.cpu.halted() {
            return None;
        }
        self.cpu.step(&self.program, &mut self.mem).ok()
    }
}

/// A random but always-terminating program: an outer counted loop whose
/// body mixes ALU chains, multiplies/divides, forward data-dependent
/// branches, and loads/stores walking a strided region. Register roles:
/// S0 = data base, S1 = loop counter, S2 = iteration bound, S3 = LCG
/// state; T0..T6 are scratch for the random body.
fn random_program(rng: &mut SplitMix64) -> Program {
    let mut a = Asm::new();
    let iters = 8 + rng.next_below(48) as i64;
    let body_len = 6 + rng.next_below(24);
    // Stride picks cover same-line hits, L1/L2 conflicts, and full misses.
    let stride = [0i64, 8, 64, 4096, 1 << 14, 1 << 20][rng.next_below(6) as usize];
    a.li(reg::S0, 0x4_0000);
    a.li(reg::S1, 0);
    a.li(reg::S2, iters);
    a.li(reg::S3, 0x9E37_79B9_7F4A_7C15u64 as i64);
    let top = a.label();
    a.bind(top).unwrap();
    for _ in 0..body_len {
        let t = |r: u64| reg::T0 + (r % 7) as u8;
        match rng.next_below(10) {
            0 => {
                a.add(t(rng.next_u64()), t(rng.next_u64()), t(rng.next_u64()));
            }
            1 => {
                a.addi(
                    t(rng.next_u64()),
                    t(rng.next_u64()),
                    rng.next_below(100) as i64,
                );
            }
            2 => {
                a.mul(t(rng.next_u64()), t(rng.next_u64()), t(rng.next_u64()));
            }
            3 => {
                // Unpipelined divider: stresses FU structural hazards.
                a.div(t(rng.next_u64()), t(rng.next_u64()), t(rng.next_u64()));
            }
            4 => {
                a.xor(t(rng.next_u64()), t(rng.next_u64()), t(rng.next_u64()));
            }
            5 | 6 => {
                let disp = (rng.next_below(512) * 8) as i64;
                a.ld(t(rng.next_u64()), reg::S0, disp);
            }
            7 => {
                let disp = (rng.next_below(512) * 8) as i64;
                a.sd(t(rng.next_u64()), reg::S0, disp);
            }
            8 => {
                // Data-dependent forward branch over a one-instruction
                // shadow: mispredicts pseudo-randomly.
                let skip = a.label();
                a.mul(reg::S3, reg::S3, reg::S3);
                a.addi(reg::S3, reg::S3, 0x6b5f);
                a.srli(reg::T6, reg::S3, 63);
                a.beqz(reg::T6, skip);
                a.addi(reg::T5, reg::T5, 1);
                a.bind(skip).unwrap();
            }
            _ => {
                a.nop();
            }
        }
    }
    if stride != 0 {
        a.addi(reg::S0, reg::S0, stride);
    }
    a.addi(reg::S1, reg::S1, 1);
    a.blt(reg::S1, reg::S2, top);
    a.halt();
    a.finish().unwrap()
}

/// The Table 3 8-way machine, narrowed to `width` with proportionally
/// shrunk window, queues, ports, MSHRs, and unit counts — small enough
/// that every structural stall path fires routinely.
fn machine(width: u32) -> MachineConfig {
    let mut cfg = MachineConfig::eight_way();
    if width == 8 {
        return cfg;
    }
    cfg.fetch_width = width;
    cfg.decode_width = width;
    cfg.issue_width = width;
    cfg.commit_width = width;
    cfg.ruu_size = 16 * width;
    cfg.lsq_size = 8 * width;
    cfg.store_buffer = 2 * width;
    cfg.ifq_size = 2 * width;
    cfg.int_alu_units = width;
    cfg.int_muldiv_units = (width / 2).max(1);
    cfg.fp_alu_units = (width / 2).max(1);
    cfg.fp_muldiv_units = 1;
    cfg.l1d_ports = (width / 4).max(1);
    cfg.mshrs = width;
    cfg
}

/// Warm-state statistics that depend on the exact access sequence.
#[derive(Debug, PartialEq)]
struct WarmStats {
    l1i: (u64, u64),
    l1d: (u64, u64),
    l2: (u64, u64),
    itlb: (u64, u64),
    dtlb: (u64, u64),
    cond_mispredicts: u64,
}

fn warm_stats(warm: &WarmState) -> WarmStats {
    WarmStats {
        l1i: (
            warm.hierarchy.l1i().accesses(),
            warm.hierarchy.l1i().misses(),
        ),
        l1d: (
            warm.hierarchy.l1d().accesses(),
            warm.hierarchy.l1d().misses(),
        ),
        l2: (warm.hierarchy.l2().accesses(), warm.hierarchy.l2().misses()),
        itlb: (warm.itlb.accesses(), warm.itlb.misses()),
        dtlb: (warm.dtlb.accesses(), warm.dtlb.misses()),
        cond_mispredicts: warm.bpred.cond_mispredicts(),
    }
}

/// Runs `program` to completion on both models, split into two `run`
/// calls at `split` commits (state must carry across the boundary), and
/// asserts measurement + warm-state equality segment by segment.
fn assert_models_agree(program: Program, cfg: &MachineConfig, split: u64, case: u64) {
    let (event_a, event_b, event_warm, event_skipped) = {
        let mut warm = WarmState::new(cfg);
        let mut pipeline = Pipeline::new(cfg);
        let mut source = CpuSource::new(program.clone());
        let a = pipeline.run(&mut warm, &mut source, split, true);
        let b = pipeline.run(&mut warm, &mut source, u64::MAX, true);
        (a, b, warm_stats(&warm), pipeline.skipped_cycles())
    };
    let (scan_a, scan_b, scan_warm) = {
        let mut warm = WarmState::new(cfg);
        let mut pipeline = ScanPipeline::new(cfg);
        let mut source = CpuSource::new(program);
        let a = pipeline.run(&mut warm, &mut source, split, true);
        let b = pipeline.run(&mut warm, &mut source, u64::MAX, true);
        (a, b, warm_stats(&warm))
    };
    let ctx = |seg: &str, e: &UnitMeasurement, s: &UnitMeasurement| {
        format!(
            "case {case} ({}) segment {seg}: event {{cycles: {}, instrs: {}}} vs scan \
             {{cycles: {}, instrs: {}}} (skipped {event_skipped})",
            cfg.name, e.cycles, e.instructions, s.cycles, s.instructions
        )
    };
    assert_eq!(event_a, scan_a, "{}", ctx("A", &event_a, &scan_a));
    assert_eq!(event_b, scan_b, "{}", ctx("B", &event_b, &scan_b));
    assert_eq!(
        event_warm, scan_warm,
        "case {case} ({}) warm state",
        cfg.name
    );
}

#[test]
fn event_driven_matches_scan_reference_on_random_programs() {
    for width in [2u32, 4, 8] {
        let cfg = machine(width);
        let mut rng = SplitMix64::new(0xC0DE + width as u64);
        for case in 0..24 {
            let program = random_program(&mut rng);
            let split = 1 + rng.next_below(400);
            assert_models_agree(program, &cfg, split, case);
        }
    }
}

#[test]
fn event_driven_matches_scan_on_detailed_warming_intervals() {
    // measure == false intervals (detailed warming) advance state without
    // counters; the models must stay in lockstep there too.
    let cfg = machine(4);
    let mut rng = SplitMix64::new(0xFACE);
    for case in 0..8 {
        let program = random_program(&mut rng);
        let warm_commits = 1 + rng.next_below(300);

        let (event_m, event_warm) = {
            let mut warm = WarmState::new(&cfg);
            let mut pipeline = Pipeline::new(&cfg);
            let mut source = CpuSource::new(program.clone());
            let w = pipeline.run(&mut warm, &mut source, warm_commits, false);
            assert_eq!(
                w.counters,
                Default::default(),
                "case {case}: warming counted"
            );
            let m = pipeline.run(&mut warm, &mut source, u64::MAX, true);
            (m, warm_stats(&warm))
        };
        let (scan_m, scan_warm) = {
            let mut warm = WarmState::new(&cfg);
            let mut pipeline = ScanPipeline::new(&cfg);
            let mut source = CpuSource::new(program);
            pipeline.run(&mut warm, &mut source, warm_commits, false);
            let m = pipeline.run(&mut warm, &mut source, u64::MAX, true);
            (m, warm_stats(&warm))
        };
        assert_eq!(event_m, scan_m, "case {case} measured interval");
        assert_eq!(event_warm, scan_warm, "case {case} warm state");
    }
}

//! Golden-state equivalence against the historical parallel-Vec layouts.
//!
//! The packed per-way `Cache`/`Tlb`/BTB records and the per-set MRU scan
//! hint must be *bit-identical* in behaviour to the original layout
//! (separate tags/valid/dirty/lru arrays, divide-based indexing, no MRU
//! hint): same hit/miss outcomes, same write-backs, same victims, same
//! predictor decisions. These tests re-implement the original structures
//! verbatim as reference models and drive both through long random and
//! benchmark-derived access streams.

use smarts_isa::{Cpu, ExecRecord, OpClass};
use smarts_uarch::{
    BranchPredictor, Cache, CacheConfig, CacheOutcome, MachineConfig, PredictorConfig, Tlb,
    TlbConfig, WarmState,
};

/// Deterministic xorshift64* stream so failures reproduce exactly.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

// --- Reference cache: the pre-optimisation four-parallel-Vec layout. ---

struct RefCache {
    cfg: CacheConfig,
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    lru: Vec<u64>,
    tick: u64,
    sets: u64,
    assoc: usize,
}

impl RefCache {
    fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let lines = (sets * cfg.assoc as u64) as usize;
        RefCache {
            cfg,
            tags: vec![0; lines],
            valid: vec![false; lines],
            dirty: vec![false; lines],
            lru: vec![0; lines],
            tick: 0,
            sets,
            assoc: cfg.assoc as usize,
        }
    }

    fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.tick += 1;
        let line = addr / self.cfg.line_bytes;
        let set = line % self.sets;
        let tag = line / self.sets;
        let base = set as usize * self.assoc;
        for way in base..base + self.assoc {
            if self.valid[way] && self.tags[way] == tag {
                self.lru[way] = self.tick;
                self.dirty[way] |= is_write;
                return CacheOutcome {
                    hit: true,
                    writeback: false,
                };
            }
        }
        let mut victim = base;
        let mut best = u64::MAX;
        for way in base..base + self.assoc {
            if !self.valid[way] {
                victim = way;
                break;
            }
            if self.lru[way] < best {
                best = self.lru[way];
                victim = way;
            }
        }
        let writeback = self.valid[victim] && self.dirty[victim];
        self.tags[victim] = tag;
        self.valid[victim] = true;
        self.dirty[victim] = is_write;
        self.lru[victim] = self.tick;
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    fn probe(&self, addr: u64) -> bool {
        let line = addr / self.cfg.line_bytes;
        let set = line % self.sets;
        let tag = line / self.sets;
        let base = set as usize * self.assoc;
        (base..base + self.assoc).any(|way| self.valid[way] && self.tags[way] == tag)
    }
}

// --- Reference TLB: parallel Vecs, divide-based indexing. ---

struct RefTlb {
    cfg: TlbConfig,
    tags: Vec<u64>,
    valid: Vec<bool>,
    lru: Vec<u64>,
    tick: u64,
    sets: u64,
    assoc: usize,
    misses: u64,
}

impl RefTlb {
    fn new(cfg: TlbConfig) -> Self {
        let sets = (cfg.entries / cfg.assoc) as u64;
        let slots = cfg.entries as usize;
        RefTlb {
            cfg,
            tags: vec![0; slots],
            valid: vec![false; slots],
            lru: vec![0; slots],
            tick: 0,
            sets,
            assoc: cfg.assoc as usize,
            misses: 0,
        }
    }

    fn probe(&self, addr: u64) -> bool {
        let vpn = addr / self.cfg.page_bytes;
        let set = vpn % self.sets;
        let tag = vpn / self.sets;
        let base = set as usize * self.assoc;
        (base..base + self.assoc).any(|way| self.valid[way] && self.tags[way] == tag)
    }

    fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let vpn = addr / self.cfg.page_bytes;
        let set = vpn % self.sets;
        let tag = vpn / self.sets;
        let base = set as usize * self.assoc;
        for way in base..base + self.assoc {
            if self.valid[way] && self.tags[way] == tag {
                self.lru[way] = self.tick;
                return true;
            }
        }
        self.misses += 1;
        let mut victim = base;
        let mut best = u64::MAX;
        for way in base..base + self.assoc {
            if !self.valid[way] {
                victim = way;
                break;
            }
            if self.lru[way] < best {
                best = self.lru[way];
                victim = way;
            }
        }
        self.tags[victim] = tag;
        self.valid[victim] = true;
        self.lru[victim] = self.tick;
        false
    }
}

// --- Cache equivalence ---

fn drive_cache_pair(cfg: CacheConfig, accesses: usize, addr_bits: u32, seed: u64) {
    let mut packed = Cache::new(cfg);
    let mut reference = RefCache::new(cfg);
    let mut rng = Rng(seed);
    let mask = (1u64 << addr_bits) - 1;
    for i in 0..accesses {
        let word = rng.next();
        let addr = word & mask;
        let is_write = word >> 63 == 1;
        let got = packed.access(addr, is_write);
        let want = reference.access(addr, is_write);
        assert_eq!(got, want, "access #{i} addr {addr:#x} write={is_write}");
    }
    // Final residency must agree everywhere the stream could have touched.
    let mut rng = Rng(seed ^ 0xDEAD_BEEF);
    for _ in 0..1_000 {
        let addr = rng.next() & mask;
        assert_eq!(packed.probe(addr), reference.probe(addr), "probe {addr:#x}");
    }
}

#[test]
fn cache_matches_parallel_vec_reference_on_random_streams() {
    // Pow-2 geometry (shift/mask fast path) with a hot footprint so the
    // MRU hint both hits and goes stale constantly.
    let l1 = CacheConfig {
        size_bytes: 32 * 1024,
        assoc: 2,
        line_bytes: 64,
        latency: 1,
    };
    drive_cache_pair(l1, 200_000, 17, 0x1234_5678_9ABC_DEF1);
    // High associativity.
    let l2ish = CacheConfig {
        size_bytes: 64 * 1024,
        assoc: 8,
        line_bytes: 128,
        latency: 12,
    };
    drive_cache_pair(l2ish, 200_000, 18, 0x0F0F_F0F0_1234_4321);
    // Non-power-of-two set count: exercises the divide path.
    let odd = CacheConfig {
        size_bytes: 5 * 2 * 64,
        assoc: 2,
        line_bytes: 64,
        latency: 1,
    };
    drive_cache_pair(odd, 100_000, 12, 0xFEED_FACE_CAFE_BEEF);
}

#[test]
fn cache_mru_fast_path_equals_scan_path_recency() {
    // Property form of the MRU invariant: a stream engineered to alternate
    // between MRU-hint hits and hint-stale hits must leave recency state
    // (observed through victim choices) identical to the reference model,
    // which has no hint at all.
    let cfg = CacheConfig {
        size_bytes: 4 * 2 * 64, // 4 sets × 2 ways
        assoc: 2,
        line_bytes: 64,
        latency: 1,
    };
    let mut packed = Cache::new(cfg);
    let mut reference = RefCache::new(cfg);
    let mut rng = Rng(42);
    // Small footprint: 8 lines over 8 slots → constant hits, frequent
    // evictions, every hit path (MRU and scan) taken thousands of times.
    for i in 0..50_000 {
        let line = rng.next() % 12; // 12 lines over 8 slots
        let addr = line * 64;
        let is_write = line.is_multiple_of(3);
        let got = packed.access(addr, is_write);
        let want = reference.access(addr, is_write);
        assert_eq!(got, want, "access #{i} line {line}");
    }
    for line in 0..12u64 {
        assert_eq!(packed.probe(line * 64), reference.probe(line * 64));
    }
}

#[test]
fn cache_equivalence_on_benchmark_stream() {
    // Replay a real benchmark's data stream through both models: the
    // exact address mix functional warming sees (hash probes, strides).
    let loaded = smarts_workloads::find("hashp-2")
        .expect("suite benchmark")
        .scaled(0.05)
        .load();
    let mut cpu = Cpu::new();
    let program = loaded.program;
    let mut mem_state = loaded.memory;
    let cfg = MachineConfig::eight_way();
    let mut packed = Cache::new(cfg.l1d);
    let mut reference = RefCache::new(cfg.l1d);
    let mut packed_tlb = Tlb::new(cfg.dtlb);
    let mut reference_tlb = RefTlb::new(cfg.dtlb);
    let mut streamed = 0u64;
    let _ = cpu
        .step_block(&program, &mut mem_state, 300_000, |rec| {
            if let Some(access) = rec.mem {
                streamed += 1;
                let got = packed.access(access.addr, access.is_store);
                let want = reference.access(access.addr, access.is_store);
                assert_eq!(got, want, "data access {:#x}", access.addr);
                assert_eq!(
                    packed_tlb.access(access.addr),
                    reference_tlb.access(access.addr),
                    "dtlb access {:#x}",
                    access.addr
                );
            }
        })
        .expect("benchmark executes");
    assert!(streamed > 10_000, "stream exercised the models");
    assert_eq!(packed_tlb.misses(), reference_tlb.misses);
}

// --- Batched warming equivalence ---

/// Replays a real benchmark's execution stream through both warming
/// paths — per-record [`WarmState::warm_record`] and the pre-touching
/// [`WarmState::warm_batch`] in the 64-record flushes the functional
/// engine uses — and asserts the warmed state is bit-identical: every
/// access/miss counter, plus residency probes across the touched
/// address range.
fn drive_warm_paths(name: &str, scale: f64, instructions: u64) {
    let loaded = smarts_workloads::find(name)
        .expect("suite benchmark")
        .scaled(scale)
        .load();
    let mut cpu = Cpu::new();
    let program = loaded.program;
    let mut mem_state = loaded.memory;
    let mut records: Vec<ExecRecord> = Vec::new();
    let _ = cpu
        .step_block(&program, &mut mem_state, instructions, |rec| {
            records.push(*rec);
        })
        .expect("benchmark executes");
    assert!(records.len() > 10_000, "stream exercised the models");

    let cfg = MachineConfig::eight_way();
    let mut direct = WarmState::new(&cfg);
    for rec in &records {
        direct.warm_record(rec);
    }

    // The pre-touch pass must be unobservable in the warmed state.
    {
        let mode = "in-order";
        let mut batched = WarmState::new(&cfg);
        batched.set_batch_pretouch(true);
        for chunk in records.chunks(64) {
            batched.warm_batch(chunk);
        }

        let pairs = [
            ("l1i", batched.hierarchy.l1i(), direct.hierarchy.l1i()),
            ("l1d", batched.hierarchy.l1d(), direct.hierarchy.l1d()),
            ("l2", batched.hierarchy.l2(), direct.hierarchy.l2()),
        ];
        for (what, a, b) in pairs {
            assert_eq!(a.accesses(), b.accesses(), "{name} {mode} {what} accesses");
            assert_eq!(a.misses(), b.misses(), "{name} {mode} {what} misses");
        }
        assert_eq!(
            batched.itlb.accesses(),
            direct.itlb.accesses(),
            "{name} {mode}"
        );
        assert_eq!(batched.itlb.misses(), direct.itlb.misses(), "{name} {mode}");
        assert_eq!(
            batched.dtlb.accesses(),
            direct.dtlb.accesses(),
            "{name} {mode}"
        );
        assert_eq!(batched.dtlb.misses(), direct.dtlb.misses(), "{name} {mode}");
        assert_eq!(
            batched.bpred.cond_mispredicts(),
            direct.bpred.cond_mispredicts(),
            "{name} {mode}"
        );

        // Identical residency everywhere the stream touched, not just
        // identical counts.
        for rec in &records {
            if let Some(access) = rec.mem {
                assert_eq!(
                    batched.hierarchy.l1d_resident(access.addr),
                    direct.hierarchy.l1d_resident(access.addr),
                    "{name} {mode} l1d residency at {:#x}",
                    access.addr
                );
                assert_eq!(
                    batched.dtlb.probe(access.addr),
                    direct.dtlb.probe(access.addr),
                    "{name} {mode} dtlb residency at {:#x}",
                    access.addr
                );
            }
        }
    }
}

#[test]
fn batched_warming_equals_per_record_on_pointer_chasing() {
    // chase-2 is the stream the batched pre-touch targets: dependent
    // loads whose D-side set fetches otherwise serialize.
    drive_warm_paths("chase-2", 0.05, 300_000);
}

#[test]
fn batched_warming_equals_per_record_on_hash_probing() {
    drive_warm_paths("hashp-2", 0.05, 300_000);
}

// --- TLB equivalence ---

#[test]
fn tlb_matches_parallel_vec_reference_on_random_streams() {
    let cfg = TlbConfig {
        entries: 64,
        assoc: 4,
        page_bytes: 4096,
        miss_penalty: 30,
    };
    let mut packed = Tlb::new(cfg);
    let mut reference = RefTlb::new(cfg);
    let mut rng = Rng(0xABCD_EF01_2345_6789);
    for i in 0..200_000 {
        // 22-bit addresses → 1024 pages over 64 entries: constant churn.
        let addr = rng.next() & ((1 << 22) - 1);
        assert_eq!(
            packed.access(addr),
            reference.access(addr),
            "access #{i} addr {addr:#x}"
        );
    }
    assert_eq!(packed.misses(), reference.misses);
    let mut rng = Rng(7);
    for _ in 0..1_000 {
        let addr = rng.next() & ((1 << 22) - 1);
        assert_eq!(packed.probe(addr), reference.probe(addr));
    }
}

// --- Branch predictor (incl. BTB) equivalence ---

/// Reference combined predictor with the original parallel-Vec BTB.
struct RefBpred {
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    meta: Vec<u8>,
    history: u64,
    history_mask: u64,
    btb_tags: Vec<u64>,
    btb_targets: Vec<u64>,
    btb_valid: Vec<bool>,
    btb_lru: Vec<u64>,
    btb_tick: u64,
    btb_sets: u64,
    btb_assoc: usize,
    ras: Vec<u64>,
    ras_top: usize,
    ras_depth: usize,
}

impl RefBpred {
    fn new(cfg: PredictorConfig) -> Self {
        let sets = (cfg.btb_entries / cfg.btb_assoc) as u64;
        RefBpred {
            bimodal: vec![1; cfg.bimodal_entries as usize],
            gshare: vec![1; cfg.gshare_entries as usize],
            meta: vec![1; cfg.meta_entries as usize],
            history: 0,
            history_mask: (cfg.gshare_entries as u64) - 1,
            btb_tags: vec![0; cfg.btb_entries as usize],
            btb_targets: vec![0; cfg.btb_entries as usize],
            btb_valid: vec![false; cfg.btb_entries as usize],
            btb_lru: vec![0; cfg.btb_entries as usize],
            btb_tick: 0,
            btb_sets: sets,
            btb_assoc: cfg.btb_assoc as usize,
            ras: vec![0; cfg.ras_entries as usize],
            ras_top: 0,
            ras_depth: 0,
        }
    }

    fn counter(c: &mut u8, taken: bool) {
        if taken {
            if *c < 3 {
                *c += 1;
            }
        } else if *c > 0 {
            *c -= 1;
        }
    }

    fn btb_lookup(&mut self, pc: u64) -> Option<u64> {
        self.btb_tick += 1;
        let set = pc % self.btb_sets;
        let tag = pc / self.btb_sets;
        let base = set as usize * self.btb_assoc;
        for way in base..base + self.btb_assoc {
            if self.btb_valid[way] && self.btb_tags[way] == tag {
                self.btb_lru[way] = self.btb_tick;
                return Some(self.btb_targets[way]);
            }
        }
        None
    }

    fn btb_update(&mut self, pc: u64, target: u64) {
        self.btb_tick += 1;
        let set = pc % self.btb_sets;
        let tag = pc / self.btb_sets;
        let base = set as usize * self.btb_assoc;
        for way in base..base + self.btb_assoc {
            if self.btb_valid[way] && self.btb_tags[way] == tag {
                self.btb_targets[way] = target;
                self.btb_lru[way] = self.btb_tick;
                return;
            }
        }
        let mut victim = base;
        let mut best = u64::MAX;
        for way in base..base + self.btb_assoc {
            if !self.btb_valid[way] {
                victim = way;
                break;
            }
            if self.btb_lru[way] < best {
                best = self.btb_lru[way];
                victim = way;
            }
        }
        self.btb_valid[victim] = true;
        self.btb_tags[victim] = tag;
        self.btb_targets[victim] = target;
        self.btb_lru[victim] = self.btb_tick;
    }

    fn direction(&self, pc: u64) -> bool {
        let mi = (pc & (self.meta.len() as u64 - 1)) as usize;
        if self.meta[mi] >= 2 {
            self.gshare[((pc ^ self.history) & self.history_mask) as usize] >= 2
        } else {
            self.bimodal[(pc & (self.bimodal.len() as u64 - 1)) as usize] >= 2
        }
    }

    fn predict(
        &mut self,
        pc: u64,
        class: OpClass,
        direct_target: Option<u64>,
    ) -> (bool, Option<u64>) {
        match class {
            OpClass::CondBranch => {
                let taken = self.direction(pc);
                let target = if taken { self.btb_lookup(pc) } else { None };
                (taken, target)
            }
            OpClass::Jump => (true, direct_target.or_else(|| self.btb_lookup(pc))),
            OpClass::Call => {
                self.ras_push(pc + 1);
                (true, direct_target.or_else(|| self.btb_lookup(pc)))
            }
            OpClass::Return => (true, self.ras_pop()),
            _ => (false, None),
        }
    }

    fn update(&mut self, pc: u64, class: OpClass, taken: bool, target: u64) {
        match class {
            OpClass::CondBranch => {
                let bi = (pc & (self.bimodal.len() as u64 - 1)) as usize;
                let gi = ((pc ^ self.history) & self.history_mask) as usize;
                let mi = (pc & (self.meta.len() as u64 - 1)) as usize;
                let bimodal_correct = (self.bimodal[bi] >= 2) == taken;
                let gshare_correct = (self.gshare[gi] >= 2) == taken;
                if gshare_correct != bimodal_correct {
                    Self::counter(&mut self.meta[mi], gshare_correct);
                }
                Self::counter(&mut self.bimodal[bi], taken);
                Self::counter(&mut self.gshare[gi], taken);
                self.history = ((self.history << 1) | taken as u64) & self.history_mask;
                if taken {
                    self.btb_update(pc, target);
                }
            }
            OpClass::Jump | OpClass::Call => self.btb_update(pc, target),
            _ => {}
        }
    }

    fn warm(&mut self, pc: u64, class: OpClass, taken: bool, target: u64) {
        match class {
            OpClass::Call => {
                self.ras_push(pc + 1);
                self.btb_update(pc, target);
            }
            OpClass::Return => {
                let _ = self.ras_pop();
            }
            _ => self.update(pc, class, taken, target),
        }
    }

    fn ras_push(&mut self, return_pc: u64) {
        self.ras_top = (self.ras_top + 1) % self.ras.len();
        self.ras[self.ras_top] = return_pc;
        if self.ras_depth < self.ras.len() {
            self.ras_depth += 1;
        }
    }

    fn ras_pop(&mut self) -> Option<u64> {
        if self.ras_depth == 0 {
            return None;
        }
        let value = self.ras[self.ras_top];
        self.ras_top = (self.ras_top + self.ras.len() - 1) % self.ras.len();
        self.ras_depth -= 1;
        Some(value)
    }
}

#[test]
fn branch_predictor_matches_parallel_vec_reference() {
    let cfg = MachineConfig::eight_way().bpred;
    let mut packed = BranchPredictor::new(cfg);
    let mut reference = RefBpred::new(cfg);
    let mut rng = Rng(0x5EED_5EED_5EED_5EED);
    // Interleave warming updates and predictions over a working set of
    // branch pcs large enough to churn the BTB sets.
    for i in 0..200_000 {
        let word = rng.next();
        let pc = word % 4096;
        let class = match (word >> 16) % 10 {
            0 => OpClass::Jump,
            1 => OpClass::Call,
            2 => OpClass::Return,
            _ => OpClass::CondBranch,
        };
        let taken = (word >> 32) & 1 == 1;
        let target = (word >> 33) % 4096;
        if (word >> 48).is_multiple_of(4) {
            // Mixed-in predictions exercise BTB lookup ticks and RAS in
            // exactly the interleaving detailed simulation produces.
            let direct = ((word >> 50) & 1 == 1).then_some(target);
            let got = packed.predict(pc, class, direct);
            let want = reference.predict(pc, class, direct);
            assert_eq!(
                (got.taken, got.target),
                want,
                "predict #{i} pc={pc} class={class:?}"
            );
        } else {
            packed.warm(pc, class, taken, target);
            reference.warm(pc, class, taken, target);
        }
    }
    // Final predictions across the full pc range must agree.
    for pc in 0..4096 {
        let got = packed.predict(pc, OpClass::CondBranch, None);
        let want = reference.predict(pc, OpClass::CondBranch, None);
        assert_eq!((got.taken, got.target), want, "final pc={pc}");
    }
}

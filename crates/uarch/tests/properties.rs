//! Randomized tests of the microarchitectural structures: caches against
//! a reference LRU model, TLBs, the branch predictor, and pipeline timing
//! invariants. Cases come from the workload crate's `SplitMix64`, so the
//! suite needs no external crates and failures reproduce from the fixed
//! seeds.

use smarts_isa::{Cpu, ExecRecord};
use smarts_isa::{Inst, Memory, OpClass, Opcode, Program};
use smarts_uarch::{
    BranchPredictor, Cache, CacheConfig, MachineConfig, Pipeline, Tlb, TlbConfig, TraceSource,
    WarmState,
};
use smarts_workloads::SplitMix64;
use std::collections::VecDeque;

/// A straightforward reference model of a set-associative LRU cache.
struct RefLru {
    sets: Vec<VecDeque<u64>>, // most-recent at front
    assoc: usize,
    line: u64,
}

impl RefLru {
    fn new(cfg: CacheConfig) -> Self {
        RefLru {
            sets: (0..cfg.sets()).map(|_| VecDeque::new()).collect(),
            assoc: cfg.assoc as usize,
            line: cfg.line_bytes,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line;
        let set_index = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let set = &mut self.sets[set_index];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            set.remove(pos);
            set.push_front(tag);
            true
        } else {
            set.push_front(tag);
            set.truncate(self.assoc);
            false
        }
    }
}

fn addresses(rng: &mut SplitMix64, len_bound: u64, addr_bound: u64) -> Vec<u64> {
    let len = 1 + rng.next_below(len_bound);
    (0..len).map(|_| rng.next_below(addr_bound)).collect()
}

const CASES: u64 = 64;

#[test]
fn cache_matches_reference_lru() {
    let mut rng = SplitMix64::new(201);
    for _ in 0..CASES {
        let addrs = addresses(&mut rng, 499, 1u64 << 16);
        let cfg = CacheConfig {
            size_bytes: 2048,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut reference = RefLru::new(cfg);
        for &addr in &addrs {
            let got = cache.access(addr, false).hit;
            let want = reference.access(addr);
            assert_eq!(got, want, "divergence at address {addr:#x}");
        }
        assert_eq!(cache.accesses(), addrs.len() as u64);
    }
}

#[test]
fn cache_probe_agrees_with_access_hit() {
    let mut rng = SplitMix64::new(202);
    for _ in 0..CASES {
        let addrs = addresses(&mut rng, 299, 1u64 << 14);
        let cfg = CacheConfig {
            size_bytes: 1024,
            assoc: 4,
            line_bytes: 32,
            latency: 1,
        };
        let mut cache = Cache::new(cfg);
        for &addr in &addrs {
            let resident = cache.probe(addr);
            let hit = cache.access(addr, false).hit;
            assert_eq!(resident, hit);
        }
    }
}

#[test]
fn cache_stats_are_consistent() {
    let mut rng = SplitMix64::new(203);
    for _ in 0..CASES {
        let addrs = addresses(&mut rng, 299, 1u64 << 20);
        let cfg = MachineConfig::eight_way().l1d;
        let mut cache = Cache::new(cfg);
        for &addr in &addrs {
            cache.access(addr, addr % 3 == 0);
        }
        assert!(cache.misses() <= cache.accesses());
        assert!((0.0..=1.0).contains(&cache.miss_ratio()));
    }
}

#[test]
fn tlb_same_page_always_hits_after_fill() {
    let mut rng = SplitMix64::new(204);
    for _ in 0..CASES {
        let pages = addresses(&mut rng, 99, 256);
        let mut tlb = Tlb::new(TlbConfig {
            entries: 64,
            assoc: 4,
            page_bytes: 4096,
            miss_penalty: 200,
        });
        for &p in &pages {
            let addr = p * 4096;
            tlb.access(addr);
            // Immediately after a fill, the same page must hit.
            assert!(tlb.access(addr + 123));
        }
    }
}

#[test]
fn predictor_converges_on_any_fixed_direction() {
    let mut rng = SplitMix64::new(205);
    for _ in 0..CASES {
        let pc = rng.next_below(1_000_000);
        let taken = rng.next_u64() & 1 == 1;
        let mut bp = BranchPredictor::new(MachineConfig::eight_way().bpred);
        for _ in 0..8 {
            bp.update(pc, OpClass::CondBranch, taken, pc + 5);
        }
        let p = bp.predict(pc, OpClass::CondBranch, None);
        assert_eq!(p.taken, taken);
    }
}

#[test]
fn ras_is_lifo_within_capacity() {
    for depth in 1usize..12 {
        let mut bp = BranchPredictor::new(MachineConfig::eight_way().bpred);
        for i in 0..depth as u64 {
            let _ = bp.predict(i * 10, OpClass::Call, Some(500 + i));
        }
        for i in (0..depth as u64).rev() {
            let p = bp.predict(999, OpClass::Return, None);
            assert_eq!(p.target, Some(i * 10 + 1));
        }
    }
}

/// A deterministic synthetic trace source for pipeline properties.
struct SyntheticTrace {
    records: Vec<ExecRecord>,
    at: usize,
}

impl TraceSource for SyntheticTrace {
    fn next_record(&mut self) -> Option<ExecRecord> {
        let rec = self.records.get(self.at).copied();
        self.at += 1;
        rec
    }
}

fn straightline_trace(ops: &[Opcode]) -> SyntheticTrace {
    let records = ops
        .iter()
        .enumerate()
        .map(|(pc, &op)| {
            let inst = Inst::new(op, 5, 6, 7, 64);
            ExecRecord {
                pc: pc as u64,
                inst,
                mem: None,
                taken: false,
                next_pc: pc as u64 + 1,
            }
        })
        .collect();
    SyntheticTrace { records, at: 0 }
}

const EXEC_OPS: [Opcode; 7] = [
    Opcode::Add,
    Opcode::Mul,
    Opcode::Div,
    Opcode::FAdd,
    Opcode::FMul,
    Opcode::FDiv,
    Opcode::Nop,
];

fn exec_ops(rng: &mut SplitMix64, lo: u64, hi: u64) -> Vec<Opcode> {
    let len = lo + rng.next_below(hi - lo);
    (0..len)
        .map(|_| EXEC_OPS[rng.next_below(EXEC_OPS.len() as u64) as usize])
        .collect()
}

const PIPE_CASES: u64 = 32;

#[test]
fn pipeline_commits_exactly_the_trace() {
    let mut rng = SplitMix64::new(206);
    for _ in 0..PIPE_CASES {
        let ops = exec_ops(&mut rng, 1, 400);
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let mut pipeline = Pipeline::new(&cfg);
        let mut source = straightline_trace(&ops);
        let m = pipeline.run(&mut warm, &mut source, u64::MAX, true);
        assert_eq!(m.instructions, ops.len() as u64);
        assert_eq!(m.counters.commits, ops.len() as u64);
        assert!(m.cycles >= m.instructions / cfg.commit_width as u64);
    }
}

#[test]
fn cycle_count_is_additive_across_run_boundaries() {
    let mut rng = SplitMix64::new(207);
    for _ in 0..PIPE_CASES {
        let ops = exec_ops(&mut rng, 20, 300);
        let split = 1 + rng.next_below(18);
        let cfg = MachineConfig::eight_way();
        let whole = {
            let mut warm = WarmState::new(&cfg);
            let mut pipeline = Pipeline::new(&cfg);
            let mut source = straightline_trace(&ops);
            pipeline.run(&mut warm, &mut source, u64::MAX, true).cycles
        };
        let split_total = {
            let mut warm = WarmState::new(&cfg);
            let mut pipeline = Pipeline::new(&cfg);
            let mut source = straightline_trace(&ops);
            let a = pipeline.run(&mut warm, &mut source, split, true);
            let b = pipeline.run(&mut warm, &mut source, u64::MAX, true);
            assert_eq!(a.instructions, split);
            a.cycles + b.cycles
        };
        assert_eq!(whole, split_total);
    }
}

#[test]
fn unpipelined_dividers_bound_throughput() {
    let mut rng = SplitMix64::new(208);
    for _ in 0..PIPE_CASES {
        // n dependent-free divides on 2 unpipelined units of latency 20:
        // at least n/2 × 20 cycles.
        let n_divs = 10 + rng.next_below(90);
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let mut pipeline = Pipeline::new(&cfg);
        // Use distinct destination registers to remove data dependences.
        let records: Vec<ExecRecord> = (0..n_divs)
            .map(|pc| {
                let inst = Inst::new(Opcode::Div, (pc % 24) as u8 + 4, 1, 2, 0);
                ExecRecord {
                    pc,
                    inst,
                    mem: None,
                    taken: false,
                    next_pc: pc + 1,
                }
            })
            .collect();
        let mut source = SyntheticTrace { records, at: 0 };
        let m = pipeline.run(&mut warm, &mut source, u64::MAX, true);
        let lower_bound = n_divs.div_ceil(2) * cfg.latencies.int_div - cfg.latencies.int_div;
        assert!(
            m.cycles >= lower_bound,
            "{n_divs} divides took only {} cycles (bound {lower_bound})",
            m.cycles
        );
    }
}

#[test]
fn pipeline_trace_source_from_cpu_is_equivalent_to_vec_replay() {
    // Feeding records live from the CPU or replaying a pre-recorded vector
    // must produce identical timing.
    let bench = smarts_workloads::find("branchy-1").unwrap().scaled(0.01);
    let cfg = MachineConfig::eight_way();

    let loaded = bench.load();
    let mut cpu = Cpu::new();
    let mut mem: Memory = loaded.memory.clone();
    let program: Program = loaded.program.clone();
    let mut records = Vec::new();
    while !cpu.halted() {
        records.push(cpu.step(&program, &mut mem).unwrap());
    }

    let live = {
        let mut warm = WarmState::new(&cfg);
        let mut pipeline = Pipeline::new(&cfg);
        let loaded = bench.load();
        let mut cpu = Cpu::new();
        let mut mem = loaded.memory;
        let program = loaded.program;
        let mut source = move || {
            if cpu.halted() {
                None
            } else {
                cpu.step(&program, &mut mem).ok()
            }
        };
        pipeline.run(&mut warm, &mut source, u64::MAX, true)
    };
    let replay = {
        let mut warm = WarmState::new(&cfg);
        let mut pipeline = Pipeline::new(&cfg);
        let mut source = SyntheticTrace { records, at: 0 };
        pipeline.run(&mut warm, &mut source, u64::MAX, true)
    };
    assert_eq!(live.cycles, replay.cycles);
    assert_eq!(live.instructions, replay.instructions);
}

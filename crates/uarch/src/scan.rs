//! Scan-based reference implementation of the detailed timing model.
//!
//! [`ScanPipeline`] is the original per-cycle-scan out-of-order model:
//! every cycle it walks the whole RUU once in `writeback` (looking for
//! issued entries whose `complete_cycle` has arrived) and once in `issue`
//! (re-evaluating every waiting entry's operand readiness), and it never
//! skips a cycle — a stalled machine burns one `step_cycle` per tick.
//!
//! The production [`crate::Pipeline`] replaces those scans with
//! producer→consumer wakeup lists, a completion list keyed on
//! `complete_cycle`, and a next-interesting-cycle bound that jumps dead
//! cycles in one step. Its contract is *bit-identical* cycle counts,
//! committed-instruction counts, activity counters, and warm-state
//! updates for any trace — and this module is the oracle for that
//! contract: the cross-model property tests
//! (`crates/uarch/tests/cross_model.rs`) replay SplitMix64-random
//! programs through both models and assert equality.
//!
//! This model is compiled for tests and benchmarks only in spirit: it is
//! public API so integration tests and the bench harness can reach it,
//! but nothing in the production sampling path should instantiate it.

use std::collections::VecDeque;

use crate::bpred::Prediction;
use crate::config::MachineConfig;
use crate::pipeline::{TraceSource, UnitMeasurement};
use crate::warm::WarmState;
use smarts_energy::ActivityCounters;
use smarts_isa::{OpClass, Opcode};

const NO_PRODUCER: u64 = u64::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Issued,
    Completed,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    rec: smarts_isa::ExecRecord,
    srcs: [u64; 2],
    state: EntryState,
    complete_cycle: u64,
    mispredicted: bool,
}

#[derive(Debug, Clone)]
struct IfqEntry {
    rec: smarts_isa::ExecRecord,
    avail: u64,
    mispredicted: bool,
}

#[derive(Debug, Clone, Copy)]
enum SbState {
    Waiting,
    InFlight { done: u64 },
}

#[derive(Debug, Clone, Copy)]
struct SbEntry {
    addr: u64,
    size: u8,
    state: SbState,
}

#[derive(Debug, Clone, Copy)]
enum LoadPlan {
    Forward,
    Blocked,
    CacheAccess,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuPool {
    IntAlu = 0,
    IntMulDiv = 1,
    FpAlu = 2,
    FpMulDiv = 3,
}

/// The scan-based out-of-order pipeline (reference model).
///
/// Same public surface and same simulated machine as [`crate::Pipeline`];
/// see the module docs for why it exists. State accumulates across
/// successive [`ScanPipeline::run`] calls exactly like the production
/// pipeline's.
#[derive(Debug, Clone)]
pub struct ScanPipeline {
    cfg: MachineConfig,
    cycle: u64,
    next_seq: u64,
    rob: VecDeque<RobEntry>,
    ifq: VecDeque<IfqEntry>,
    reg_producer: [u64; 64],
    lsq_used: u32,
    store_buffer: VecDeque<SbEntry>,
    mshrs: Vec<u64>,
    fus: [Vec<u64>; 4],
    ports_used: u32,
    fetch_stall_until: u64,
    pending_redirect: bool,
    wrong_path_pc: Option<u64>,
    halted: bool,
    source_done: bool,
    pulled: u64,
}

impl ScanPipeline {
    /// Creates an empty (cold) pipeline for the given machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        ScanPipeline {
            cfg: cfg.clone(),
            cycle: 0,
            next_seq: 0,
            rob: VecDeque::with_capacity(cfg.ruu_size as usize),
            ifq: VecDeque::with_capacity(cfg.ifq_size as usize),
            reg_producer: [NO_PRODUCER; 64],
            lsq_used: 0,
            store_buffer: VecDeque::with_capacity(cfg.store_buffer as usize),
            mshrs: vec![0; cfg.mshrs as usize],
            fus: [
                vec![0; cfg.int_alu_units as usize],
                vec![0; cfg.int_muldiv_units as usize],
                vec![0; cfg.fp_alu_units as usize],
                vec![0; cfg.fp_muldiv_units as usize],
            ],
            ports_used: 0,
            fetch_stall_until: 0,
            pending_redirect: false,
            wrong_path_pc: None,
            halted: false,
            source_done: false,
            pulled: 0,
        }
    }

    /// Current cycle count (monotonic across `run` calls).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether a `halt` instruction has committed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether the trace source reported end-of-stream.
    pub fn source_done(&self) -> bool {
        self.source_done
    }

    /// Runs detailed simulation until `commits` more instructions commit
    /// (or the stream ends / the program halts). Semantics identical to
    /// [`crate::Pipeline::run`].
    ///
    /// # Panics
    ///
    /// Panics if the pipeline makes no forward progress for an extended
    /// period (an internal deadlock — a model bug, never a property of
    /// the simulated program).
    pub fn run(
        &mut self,
        warm: &mut WarmState,
        source: &mut dyn TraceSource,
        commits: u64,
        measure: bool,
    ) -> UnitMeasurement {
        let start_cycle = self.cycle;
        let start_pulled = self.pulled;
        let mut counters = ActivityCounters::default();
        let mut committed_total = 0u64;
        let mut idle_cycles = 0u64;

        while committed_total < commits && !self.halted {
            if self.source_done && self.rob.is_empty() && self.ifq.is_empty() {
                break;
            }
            let committed = self.step_cycle(
                warm,
                source,
                measure,
                &mut counters,
                commits - committed_total,
            );
            committed_total += committed;
            if committed == 0 {
                idle_cycles += 1;
                assert!(
                    idle_cycles < 1_000_000,
                    "pipeline deadlock at cycle {}: rob={} ifq={} sb={} redirect={}",
                    self.cycle,
                    self.rob.len(),
                    self.ifq.len(),
                    self.store_buffer.len(),
                    self.pending_redirect
                );
            } else {
                idle_cycles = 0;
            }
        }

        UnitMeasurement {
            cycles: self.cycle - start_cycle,
            instructions: committed_total,
            pulled: self.pulled - start_pulled,
            counters,
        }
    }

    fn step_cycle(
        &mut self,
        warm: &mut WarmState,
        source: &mut dyn TraceSource,
        measure: bool,
        counters: &mut ActivityCounters,
        max_commit: u64,
    ) -> u64 {
        self.ports_used = 0;
        let committed = self.commit(warm, measure, counters, max_commit);
        self.drain_store_buffer(warm, measure, counters);
        self.writeback(measure, counters);
        self.issue(warm, measure, counters);
        self.dispatch(measure, counters);
        self.fetch(warm, source, measure, counters);
        self.cycle += 1;
        committed
    }

    // ---- commit ---------------------------------------------------------

    fn commit(
        &mut self,
        warm: &mut WarmState,
        measure: bool,
        counters: &mut ActivityCounters,
        max_commit: u64,
    ) -> u64 {
        let budget = (self.cfg.commit_width as u64).min(max_commit);
        let mut n = 0;
        while n < budget {
            let Some(head) = self.rob.front() else { break };
            if head.state != EntryState::Completed || head.complete_cycle > self.cycle {
                break;
            }
            let class = head.rec.class();
            if class == OpClass::Store {
                if self.store_buffer.len() >= self.cfg.store_buffer as usize {
                    break; // store-buffer overflow stalls commit
                }
                let mem = head.rec.mem.expect("store has a memory access");
                self.store_buffer.push_back(SbEntry {
                    addr: mem.addr,
                    size: mem.size,
                    state: SbState::Waiting,
                });
                if measure {
                    counters.store_buffer_ops += 1;
                }
            }
            let head = self.rob.pop_front().expect("head checked above");
            if class.is_control() {
                warm.bpred
                    .update(head.rec.pc, class, head.rec.taken, head.rec.next_pc);
                if measure {
                    counters.bpred_updates += 1;
                }
            }
            if class.is_mem() {
                self.lsq_used -= 1;
            }
            if class == OpClass::Halt {
                self.halted = true;
            }
            if measure {
                counters.commits += 1;
            }
            n += 1;
            if self.halted {
                break;
            }
        }
        n
    }

    // ---- store buffer ----------------------------------------------------

    fn drain_store_buffer(
        &mut self,
        warm: &mut WarmState,
        measure: bool,
        counters: &mut ActivityCounters,
    ) {
        // Retire finished stores in order from the head.
        while let Some(front) = self.store_buffer.front() {
            match front.state {
                SbState::InFlight { done } if done <= self.cycle => {
                    self.store_buffer.pop_front();
                }
                _ => break,
            }
        }
        // Start at most one waiting store per cycle (single write port on
        // the buffer), if a data-cache port and — on a miss — an MSHR are
        // available. In-flight stores overlap through the MSHRs.
        if self.ports_used >= self.cfg.l1d_ports {
            return;
        }
        let cycle = self.cycle;
        let Some(entry) = self
            .store_buffer
            .iter_mut()
            .find(|e| matches!(e.state, SbState::Waiting))
        else {
            return;
        };
        let resident = warm.hierarchy.l1d_resident(entry.addr);
        if !resident && !Self::mshr_available(&self.mshrs, cycle) {
            return;
        }
        let res = warm.hierarchy.access_data(entry.addr, true);
        self.ports_used += 1;
        if !res.l1_hit {
            Self::mshr_allocate(&mut self.mshrs, cycle, cycle + res.latency);
        }
        entry.state = SbState::InFlight {
            done: cycle + res.latency,
        };
        if measure {
            counters.l1d_accesses += 1;
            counters.l2_accesses += res.l2_accesses;
            counters.mem_accesses += res.mem_accesses;
        }
    }

    fn mshr_available(mshrs: &[u64], cycle: u64) -> bool {
        mshrs.iter().any(|&release| release <= cycle)
    }

    fn mshr_allocate(mshrs: &mut [u64], cycle: u64, until: u64) {
        if let Some(slot) = mshrs.iter_mut().find(|release| **release <= cycle) {
            *slot = until;
        }
    }

    // ---- writeback -------------------------------------------------------

    fn writeback(&mut self, measure: bool, counters: &mut ActivityCounters) {
        let cycle = self.cycle;
        let mut redirect_at: Option<u64> = None;
        for entry in self.rob.iter_mut() {
            if entry.state == EntryState::Issued && entry.complete_cycle <= cycle {
                entry.state = EntryState::Completed;
                if measure {
                    counters.window_wakeups += 1;
                    if entry.rec.inst.defs().is_some() {
                        counters.regfile_writes += 1;
                    }
                }
                if entry.mispredicted {
                    if measure {
                        counters.branch_mispredicts += 1;
                    }
                    redirect_at = Some(
                        redirect_at
                            .unwrap_or(0)
                            .max(entry.complete_cycle + self.cfg.bpred.mispred_penalty),
                    );
                }
            }
        }
        if let Some(resume) = redirect_at {
            self.fetch_stall_until = self.fetch_stall_until.max(resume);
            self.pending_redirect = false;
            self.wrong_path_pc = None;
        }
    }

    // ---- issue -----------------------------------------------------------

    fn entry_ready(&self, idx: usize) -> bool {
        let front_seq = self.rob.front().map_or(self.next_seq, |e| e.seq);
        let entry = &self.rob[idx];
        entry.srcs.iter().all(|&src| {
            if src == NO_PRODUCER || src < front_seq {
                return true;
            }
            let producer = &self.rob[(src - front_seq) as usize];
            producer.state == EntryState::Completed && producer.complete_cycle <= self.cycle
        })
    }

    fn load_plan(&self, idx: usize) -> LoadPlan {
        let mem = self.rob[idx].rec.mem.expect("load has a memory access");
        let (a0, a1) = (mem.addr, mem.addr + mem.size as u64);
        // Youngest older overlapping store in the window wins.
        for j in (0..idx).rev() {
            let other = &self.rob[j];
            if other.rec.class() != OpClass::Store {
                continue;
            }
            let om = other.rec.mem.expect("store has a memory access");
            let (b0, b1) = (om.addr, om.addr + om.size as u64);
            if a0 < b1 && b0 < a1 {
                return if other.state == EntryState::Completed && other.complete_cycle <= self.cycle
                {
                    LoadPlan::Forward
                } else {
                    LoadPlan::Blocked
                };
            }
        }
        // Post-commit stores still draining also forward.
        for sb in &self.store_buffer {
            let (b0, b1) = (sb.addr, sb.addr + sb.size as u64);
            if a0 < b1 && b0 < a1 {
                return LoadPlan::Forward;
            }
        }
        LoadPlan::CacheAccess
    }

    fn fu_for(&self, class: OpClass) -> Option<(FuPool, u64, bool)> {
        let lat = &self.cfg.latencies;
        match class {
            OpClass::IntAlu
            | OpClass::CondBranch
            | OpClass::Jump
            | OpClass::Call
            | OpClass::Return => Some((FuPool::IntAlu, lat.int_alu, true)),
            OpClass::IntMul => Some((FuPool::IntMulDiv, lat.int_mul, true)),
            OpClass::IntDiv => Some((FuPool::IntMulDiv, lat.int_div, false)),
            OpClass::FpAlu => Some((FuPool::FpAlu, lat.fp_alu, true)),
            OpClass::FpMul => Some((FuPool::FpMulDiv, lat.fp_mul, true)),
            OpClass::FpDiv => Some((FuPool::FpMulDiv, lat.fp_div, false)),
            _ => None,
        }
    }

    fn issue(&mut self, warm: &mut WarmState, measure: bool, counters: &mut ActivityCounters) {
        let mut issued = 0u32;
        let cycle = self.cycle;
        for idx in 0..self.rob.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            if self.rob[idx].state != EntryState::Waiting || !self.entry_ready(idx) {
                continue;
            }
            let class = self.rob[idx].rec.class();
            let n_srcs = self.rob[idx].rec.inst.uses().iter().flatten().count() as u64;

            let complete_cycle = match class {
                OpClass::Load => match self.load_plan(idx) {
                    LoadPlan::Blocked => continue,
                    LoadPlan::Forward => {
                        if measure {
                            counters.lsq_searches += 1;
                        }
                        cycle + 1
                    }
                    LoadPlan::CacheAccess => {
                        if self.ports_used >= self.cfg.l1d_ports {
                            continue;
                        }
                        let addr = self.rob[idx].rec.mem.expect("load").addr;
                        let resident = warm.hierarchy.l1d_resident(addr);
                        if !resident && !Self::mshr_available(&self.mshrs, cycle) {
                            continue;
                        }
                        let tlb_hit = warm.dtlb.access(addr);
                        let res = warm.hierarchy.access_data(addr, false);
                        self.ports_used += 1;
                        if !res.l1_hit {
                            Self::mshr_allocate(&mut self.mshrs, cycle, cycle + res.latency);
                        }
                        let mut latency = res.latency;
                        if !tlb_hit {
                            latency += self.cfg.dtlb.miss_penalty;
                        }
                        if measure {
                            counters.lsq_searches += 1;
                            counters.dtlb_accesses += 1;
                            counters.l1d_accesses += 1;
                            counters.l2_accesses += res.l2_accesses;
                            counters.mem_accesses += res.mem_accesses;
                        }
                        cycle + latency
                    }
                },
                OpClass::Store => {
                    // Stores "execute" by computing address + reading data;
                    // the memory write happens post-commit from the store
                    // buffer. The D-TLB is consulted at execute time.
                    let addr = self.rob[idx].rec.mem.expect("store").addr;
                    let tlb_hit = warm.dtlb.access(addr);
                    if measure {
                        counters.dtlb_accesses += 1;
                    }
                    let penalty = if tlb_hit {
                        0
                    } else {
                        self.cfg.dtlb.miss_penalty
                    };
                    cycle + 1 + penalty
                }
                OpClass::Nop | OpClass::Halt => cycle + 1,
                _ => {
                    let (pool, latency, pipelined) =
                        self.fu_for(class).expect("execution class has a unit");
                    let units = &mut self.fus[pool as usize];
                    let Some(unit) = units.iter_mut().find(|busy| **busy <= cycle) else {
                        continue; // structural hazard
                    };
                    *unit = if pipelined {
                        cycle + 1
                    } else {
                        cycle + latency
                    };
                    if measure {
                        match class {
                            OpClass::IntMul => counters.int_mul_ops += 1,
                            OpClass::IntDiv => counters.int_div_ops += 1,
                            OpClass::FpAlu => counters.fp_alu_ops += 1,
                            OpClass::FpMul => counters.fp_mul_ops += 1,
                            OpClass::FpDiv => counters.fp_div_ops += 1,
                            _ => counters.int_alu_ops += 1,
                        }
                    }
                    cycle + latency
                }
            };

            let entry = &mut self.rob[idx];
            entry.state = EntryState::Issued;
            entry.complete_cycle = complete_cycle;
            issued += 1;
            if measure {
                counters.window_issues += 1;
                counters.regfile_reads += n_srcs;
            }
        }
    }

    // ---- dispatch ----------------------------------------------------------

    fn dispatch(&mut self, measure: bool, counters: &mut ActivityCounters) {
        let mut n = 0;
        while n < self.cfg.decode_width {
            let Some(front) = self.ifq.front() else { break };
            if front.avail > self.cycle {
                break;
            }
            if self.rob.len() >= self.cfg.ruu_size as usize {
                break;
            }
            let class = front.rec.class();
            if class.is_mem() && self.lsq_used >= self.cfg.lsq_size {
                break;
            }
            let ifq_entry = self.ifq.pop_front().expect("front checked above");
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut srcs = [NO_PRODUCER; 2];
            for (slot, used) in srcs.iter_mut().zip(ifq_entry.rec.inst.uses()) {
                if let Some(r) = used {
                    *slot = self.reg_producer[r.flat()];
                }
            }
            if let Some(def) = ifq_entry.rec.inst.defs() {
                self.reg_producer[def.flat()] = seq;
            }
            if class.is_mem() {
                self.lsq_used += 1;
            }
            self.rob.push_back(RobEntry {
                seq,
                rec: ifq_entry.rec,
                srcs,
                state: EntryState::Waiting,
                complete_cycle: 0,
                mispredicted: ifq_entry.mispredicted,
            });
            if measure {
                counters.decodes += 1;
                counters.renames += 1;
            }
            n += 1;
        }
    }

    // ---- fetch ---------------------------------------------------------------

    fn fetch(
        &mut self,
        warm: &mut WarmState,
        source: &mut dyn TraceSource,
        measure: bool,
        counters: &mut ActivityCounters,
    ) {
        if self.pending_redirect {
            self.fetch_wrong_path(warm, measure, counters);
            return;
        }
        if self.fetch_stall_until > self.cycle || self.halted || self.source_done {
            return;
        }
        let line_bytes = self.cfg.l1i.line_bytes;
        let mut fetched = 0u32;
        let mut taken_seen = 0u32;
        let mut current_line = u64::MAX;

        while fetched < self.cfg.fetch_width && self.ifq.len() < self.cfg.ifq_size as usize {
            let Some(rec) = source.next_record() else {
                self.source_done = true;
                break;
            };
            self.pulled += 1;
            let fetch_addr = rec.fetch_addr();
            let line = fetch_addr / line_bytes;
            let mut avail = self.cycle;
            if line != current_line {
                current_line = line;
                let tlb_hit = warm.itlb.access(fetch_addr);
                let res = warm.hierarchy.access_instr(fetch_addr);
                if measure {
                    counters.itlb_accesses += 1;
                    counters.l1i_accesses += 1;
                    counters.l2_accesses += res.l2_accesses;
                    counters.mem_accesses += res.mem_accesses;
                }
                let mut delay = 0;
                if !tlb_hit {
                    delay += self.cfg.itlb.miss_penalty;
                }
                if !res.l1_hit {
                    // Extra cycles beyond the pipelined L1 hit latency.
                    delay += res.latency - self.cfg.l1i.latency;
                }
                if delay > 0 {
                    avail = self.cycle + delay;
                    self.fetch_stall_until = avail;
                }
            }
            if measure {
                counters.fetches += 1;
            }

            let class = rec.class();
            let mut mispredicted = false;
            let mut predicted_taken = false;
            let mut wrong_pred = Prediction {
                taken: false,
                target: None,
            };
            if class.is_control() {
                let direct_target = match rec.inst.op {
                    Opcode::Jal => Some(rec.inst.imm as u64),
                    _ => None,
                };
                let pred = warm.bpred.predict(rec.pc, class, direct_target);
                if measure {
                    counters.bpred_lookups += 1;
                    counters.btb_lookups += 1;
                }
                let correct = if class == OpClass::CondBranch {
                    pred.taken == rec.taken && (!rec.taken || pred.target == Some(rec.next_pc))
                } else {
                    pred.target == Some(rec.next_pc)
                };
                mispredicted = !correct;
                predicted_taken = pred.taken;
                wrong_pred = pred;
            }

            self.ifq.push_back(IfqEntry {
                rec,
                avail,
                mispredicted,
            });
            fetched += 1;

            if mispredicted {
                // The front end now fetches the wrong path: no further
                // correct-path instructions until the branch resolves.
                self.pending_redirect = true;
                if self.cfg.model_wrong_path {
                    self.wrong_path_pc = Some(wrong_path_start(&rec, wrong_pred));
                }
                break;
            }
            if predicted_taken {
                taken_seen += 1;
                if taken_seen >= self.cfg.bpred.predictions_per_cycle {
                    break;
                }
            }
            if self.fetch_stall_until > self.cycle {
                break; // line miss: later instructions arrive with the line
            }
        }
    }

    /// Pursues the wrong path after a fetched misprediction: sequential
    /// fetch from the predicted (wrong) pc, touching the I-TLB and
    /// I-cache only.
    fn fetch_wrong_path(
        &mut self,
        warm: &mut WarmState,
        measure: bool,
        counters: &mut ActivityCounters,
    ) {
        let Some(mut pc) = self.wrong_path_pc else {
            return;
        };
        if self.fetch_stall_until > self.cycle {
            return;
        }
        let line_bytes = self.cfg.l1i.line_bytes;
        let mut current_line = u64::MAX;
        for _ in 0..self.cfg.fetch_width {
            let fetch_addr = smarts_isa::Program::fetch_addr(pc);
            let line = fetch_addr / line_bytes;
            if line != current_line {
                current_line = line;
                let tlb_hit = warm.itlb.access(fetch_addr);
                let res = warm.hierarchy.access_instr(fetch_addr);
                if measure {
                    counters.itlb_accesses += 1;
                    counters.l1i_accesses += 1;
                    counters.l2_accesses += res.l2_accesses;
                    counters.mem_accesses += res.mem_accesses;
                }
                let mut delay = 0;
                if !tlb_hit {
                    delay += self.cfg.itlb.miss_penalty;
                }
                if !res.l1_hit {
                    delay += res.latency - self.cfg.l1i.latency;
                }
                if delay > 0 {
                    // The wrong path stalls on its own misses, exactly
                    // like correct-path fetch.
                    self.fetch_stall_until = self.cycle + delay;
                    pc += 1;
                    break;
                }
            }
            if measure {
                counters.fetches += 1;
            }
            pc += 1;
        }
        self.wrong_path_pc = Some(pc);
    }
}

/// The first instruction index of the predicted-but-wrong path.
fn wrong_path_start(rec: &smarts_isa::ExecRecord, pred: Prediction) -> u64 {
    match pred.target {
        // Predicted taken toward a concrete (wrong or stale) target.
        Some(target) if pred.taken => target,
        // Predicted not-taken (or no target available): fall through.
        _ => rec.pc + 1,
    }
}

//! Machine configuration mirroring Table 3 of the paper.

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles on a hit.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is zero.
    pub fn sets(&self) -> u64 {
        assert!(self.size_bytes > 0 && self.assoc > 0 && self.line_bytes > 0);
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.assoc as u64),
            "cache geometry does not divide evenly"
        );
        lines / self.assoc as u64
    }
}

/// Geometry and timing of a TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Associativity.
    pub assoc: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Miss penalty in cycles (page-table walk).
    pub miss_penalty: u64,
}

/// Geometry of the combined branch predictor, BTB, and RAS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredictorConfig {
    /// Entries in the bimodal direction table (2-bit counters).
    pub bimodal_entries: u32,
    /// Entries in the gshare direction table (2-bit counters).
    pub gshare_entries: u32,
    /// Entries in the meta chooser table (2-bit counters).
    pub meta_entries: u32,
    /// Branch target buffer entries.
    pub btb_entries: u32,
    /// BTB associativity.
    pub btb_assoc: u32,
    /// Return address stack depth.
    pub ras_entries: u32,
    /// Front-end refill penalty after a resolved misprediction, in cycles.
    pub mispred_penalty: u64,
    /// Predicted-taken control transfers the fetch stage can follow per
    /// cycle.
    pub predictions_per_cycle: u32,
}

/// Execution latencies per functional-unit class, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpLatencies {
    /// Integer ALU (and logical/compare/move) latency.
    pub int_alu: u64,
    /// Integer multiply latency (pipelined).
    pub int_mul: u64,
    /// Integer divide latency (unpipelined).
    pub int_div: u64,
    /// FP add/convert latency (pipelined).
    pub fp_alu: u64,
    /// FP multiply latency (pipelined).
    pub fp_mul: u64,
    /// FP divide / square-root latency (unpipelined).
    pub fp_div: u64,
}

impl Default for OpLatencies {
    fn default() -> Self {
        OpLatencies {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_alu: 2,
            fp_mul: 4,
            fp_div: 12,
        }
    }
}

/// Complete machine configuration: the analogue of a SimpleScalar
/// configuration file, with presets reproducing Table 3 of the paper.
///
/// # Examples
///
/// ```
/// use smarts_uarch::MachineConfig;
///
/// let cfg = MachineConfig::eight_way();
/// assert_eq!(cfg.ruu_size, 128);
/// // Section 4.4's analytic bound on detailed warming:
/// // store buffer × memory latency × max IPC = 16 × 100 × 8.
/// assert_eq!(cfg.detailed_warming_bound(), 12_800);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable configuration name.
    pub name: &'static str,
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions dispatched (renamed) per cycle.
    pub decode_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub commit_width: u32,
    /// Register update unit (reorder buffer) entries.
    pub ruu_size: u32,
    /// Load/store queue entries.
    pub lsq_size: u32,
    /// Post-commit store buffer entries.
    pub store_buffer: u32,
    /// Fetch queue capacity.
    pub ifq_size: u32,
    /// Integer ALUs.
    pub int_alu_units: u32,
    /// Integer multiply/divide units.
    pub int_muldiv_units: u32,
    /// FP ALUs.
    pub fp_alu_units: u32,
    /// FP multiply/divide units.
    pub fp_muldiv_units: u32,
    /// Execution latencies.
    pub latencies: OpLatencies,
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Unified L2 cache.
    pub l2: CacheConfig,
    /// L1 data cache ports (shared by loads and store-buffer drains).
    pub l1d_ports: u32,
    /// Miss status holding registers on the L1 data cache.
    pub mshrs: u32,
    /// Main memory latency in cycles.
    pub mem_latency: u64,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
    /// Branch predictor.
    pub bpred: PredictorConfig,
    /// Model wrong-path instruction fetch after a misprediction: the
    /// front end keeps fetching down the predicted (wrong) path, touching
    /// the I-TLB and I-cache, until the branch resolves. Off by default;
    /// Section 4.5 of the paper attributes the residual functional-
    /// warming bias predominantly to wrong-path and out-of-order effects,
    /// and this knob lets the `ablation` harness quantify the wrong-path
    /// component directly.
    pub model_wrong_path: bool,
}

impl MachineConfig {
    /// The paper's 8-way baseline configuration (Table 3, left column).
    pub fn eight_way() -> Self {
        MachineConfig {
            name: "8-way",
            fetch_width: 8,
            decode_width: 8,
            issue_width: 8,
            commit_width: 8,
            ruu_size: 128,
            lsq_size: 64,
            store_buffer: 16,
            ifq_size: 16,
            int_alu_units: 4,
            int_muldiv_units: 2,
            fp_alu_units: 2,
            fp_muldiv_units: 1,
            latencies: OpLatencies::default(),
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                assoc: 2,
                line_bytes: 64,
                latency: 1,
            },
            l2: CacheConfig {
                size_bytes: 1 << 20,
                assoc: 4,
                line_bytes: 64,
                latency: 12,
            },
            l1d_ports: 2,
            mshrs: 8,
            mem_latency: 100,
            itlb: TlbConfig {
                entries: 128,
                assoc: 4,
                page_bytes: 4096,
                miss_penalty: 200,
            },
            dtlb: TlbConfig {
                entries: 256,
                assoc: 4,
                page_bytes: 4096,
                miss_penalty: 200,
            },
            bpred: PredictorConfig {
                bimodal_entries: 2048,
                gshare_entries: 2048,
                meta_entries: 2048,
                btb_entries: 512,
                btb_assoc: 4,
                ras_entries: 16,
                mispred_penalty: 7,
                predictions_per_cycle: 1,
            },
            model_wrong_path: false,
        }
    }

    /// The paper's 16-way aggressive configuration (Table 3, right
    /// column): wider datapath, larger out-of-order window, larger caches.
    pub fn sixteen_way() -> Self {
        MachineConfig {
            name: "16-way",
            fetch_width: 16,
            decode_width: 16,
            issue_width: 16,
            commit_width: 16,
            ruu_size: 256,
            lsq_size: 128,
            store_buffer: 32,
            ifq_size: 32,
            int_alu_units: 16,
            int_muldiv_units: 8,
            fp_alu_units: 8,
            fp_muldiv_units: 4,
            latencies: OpLatencies::default(),
            l1i: CacheConfig {
                size_bytes: 64 << 10,
                assoc: 2,
                line_bytes: 64,
                latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 64 << 10,
                assoc: 2,
                line_bytes: 64,
                latency: 2,
            },
            l2: CacheConfig {
                size_bytes: 2 << 20,
                assoc: 8,
                line_bytes: 64,
                latency: 16,
            },
            l1d_ports: 4,
            mshrs: 16,
            mem_latency: 100,
            itlb: TlbConfig {
                entries: 128,
                assoc: 4,
                page_bytes: 4096,
                miss_penalty: 200,
            },
            dtlb: TlbConfig {
                entries: 256,
                assoc: 4,
                page_bytes: 4096,
                miss_penalty: 200,
            },
            bpred: PredictorConfig {
                bimodal_entries: 8192,
                gshare_entries: 8192,
                meta_entries: 8192,
                btb_entries: 1024,
                btb_assoc: 4,
                ras_entries: 32,
                mispred_penalty: 10,
                predictions_per_cycle: 2,
            },
            model_wrong_path: false,
        }
    }

    /// Section 4.4's worst-case analytic bound on the detailed-warming
    /// length `W` when functional warming maintains the long-history
    /// state: store-buffer depth × memory latency × maximum IPC.
    pub fn detailed_warming_bound(&self) -> u64 {
        self.store_buffer as u64 * self.mem_latency * self.commit_width as u64
    }

    /// The paper's recommended detailed-warming length under functional
    /// warming: 2000 instructions for the 8-way machine, 4000 for the
    /// 16-way (Section 4.4). Scaled from the commit width for other
    /// configurations.
    pub fn recommended_detailed_warming(&self) -> u64 {
        250 * self.commit_width as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_eight_way_parameters() {
        let cfg = MachineConfig::eight_way();
        assert_eq!((cfg.ruu_size, cfg.lsq_size), (128, 64));
        assert_eq!(cfg.l1d.size_bytes, 32 << 10);
        assert_eq!(cfg.l1d.assoc, 2);
        assert_eq!(cfg.l1d_ports, 2);
        assert_eq!(cfg.mshrs, 8);
        assert_eq!(cfg.l2.size_bytes, 1 << 20);
        assert_eq!(cfg.l2.assoc, 4);
        assert_eq!(cfg.store_buffer, 16);
        assert_eq!(
            (cfg.l1d.latency, cfg.l2.latency, cfg.mem_latency),
            (1, 12, 100)
        );
        assert_eq!(cfg.bpred.mispred_penalty, 7);
        assert_eq!(cfg.bpred.predictions_per_cycle, 1);
        assert_eq!(cfg.itlb.entries, 128);
        assert_eq!(cfg.dtlb.entries, 256);
    }

    #[test]
    fn table3_sixteen_way_parameters() {
        let cfg = MachineConfig::sixteen_way();
        assert_eq!((cfg.ruu_size, cfg.lsq_size), (256, 128));
        assert_eq!(cfg.l1d.size_bytes, 64 << 10);
        assert_eq!(cfg.l1d_ports, 4);
        assert_eq!(cfg.mshrs, 16);
        assert_eq!(cfg.l2.size_bytes, 2 << 20);
        assert_eq!(cfg.l2.assoc, 8);
        assert_eq!(cfg.store_buffer, 32);
        assert_eq!((cfg.l1d.latency, cfg.l2.latency), (2, 16));
        assert_eq!(cfg.bpred.mispred_penalty, 10);
        assert_eq!(cfg.bpred.predictions_per_cycle, 2);
        assert_eq!(
            (
                cfg.int_alu_units,
                cfg.int_muldiv_units,
                cfg.fp_alu_units,
                cfg.fp_muldiv_units
            ),
            (16, 8, 8, 4)
        );
    }

    #[test]
    fn warming_bound_matches_paper() {
        // Paper: 16 × 100 × 8 = 12,800 for the 8-way machine.
        assert_eq!(MachineConfig::eight_way().detailed_warming_bound(), 12_800);
        assert_eq!(
            MachineConfig::sixteen_way().detailed_warming_bound(),
            51_200
        );
    }

    #[test]
    fn recommended_warming_matches_paper() {
        assert_eq!(
            MachineConfig::eight_way().recommended_detailed_warming(),
            2000
        );
        assert_eq!(
            MachineConfig::sixteen_way().recommended_detailed_warming(),
            4000
        );
    }

    #[test]
    fn cache_geometry_divides() {
        let cfg = MachineConfig::eight_way();
        assert_eq!(cfg.l1d.sets(), 256);
        assert_eq!(cfg.l2.sets(), 4096);
        let cfg16 = MachineConfig::sixteen_way();
        assert_eq!(cfg16.l1d.sets(), 512);
        assert_eq!(cfg16.l2.sets(), 4096);
    }
}

//! Set-associative caches with true-LRU replacement.

use crate::config::CacheConfig;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty line was evicted (write-back traffic to the next
    /// level).
    pub writeback: bool,
}

/// A write-back, write-allocate, set-associative cache with LRU
/// replacement.
///
/// The cache stores only tags — it models presence, not contents. The same
/// structure and the same `access` path is used both for timed accesses in
/// detailed simulation and for functional warming, so warmed state is
/// exactly the state detailed simulation would have produced for the same
/// in-order access stream.
///
/// # Examples
///
/// ```
/// use smarts_uarch::{Cache, CacheConfig};
///
/// let cfg = CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1 };
/// let mut cache = Cache::new(cfg);
/// assert!(!cache.access(0x100, false).hit); // cold miss
/// assert!(cache.access(0x100, false).hit); // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    // ways[set * assoc + way]
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    lru: Vec<u64>,
    tick: u64,
    sets: u64,
    // Fast-path indexing when line size and set count are powers of two
    // (true for every realistic geometry, including both Table 3
    // machines): division/modulo become shift/mask on the hot path.
    line_shift: Option<u32>,
    set_shift: u32,
    set_mask: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cold cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry does not divide evenly.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let ways = (sets * cfg.assoc as u64) as usize;
        let line_shift = (cfg.line_bytes.is_power_of_two() && sets.is_power_of_two())
            .then(|| cfg.line_bytes.trailing_zeros());
        Cache {
            cfg,
            tags: vec![0; ways],
            valid: vec![false; ways],
            dirty: vec![false; ways],
            lru: vec![0; ways],
            tick: 0,
            sets,
            line_shift,
            set_shift: sets.trailing_zeros(),
            set_mask: sets - 1,
            accesses: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio so far; 0 when no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Resets hit/miss statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Invalidates all lines (cold restart).
    pub fn flush(&mut self) {
        self.valid.iter_mut().for_each(|v| *v = false);
        self.dirty.iter_mut().for_each(|d| *d = false);
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (u64, u64) {
        if let Some(shift) = self.line_shift {
            let line = addr >> shift;
            (line & self.set_mask, line >> self.set_shift)
        } else {
            let line = addr / self.cfg.line_bytes;
            (line % self.sets, line / self.sets)
        }
    }

    /// Accesses the line containing `addr`, allocating on miss.
    ///
    /// `is_write` marks the line dirty (write-allocate); a dirty eviction
    /// is reported via [`CacheOutcome::writeback`].
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.accesses += 1;
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = (set * self.cfg.assoc as u64) as usize;
        let ways = self.cfg.assoc as usize;

        for way in base..base + ways {
            if self.valid[way] && self.tags[way] == tag {
                self.lru[way] = self.tick;
                if is_write {
                    self.dirty[way] = true;
                }
                return CacheOutcome {
                    hit: true,
                    writeback: false,
                };
            }
        }

        self.misses += 1;
        // Choose victim: invalid way first, else true LRU.
        let mut victim = base;
        let mut best = u64::MAX;
        for way in base..base + ways {
            if !self.valid[way] {
                victim = way;
                break;
            }
            if self.lru[way] < best {
                best = self.lru[way];
                victim = way;
            }
        }
        let writeback = self.valid[victim] && self.dirty[victim];
        self.valid[victim] = true;
        self.tags[victim] = tag;
        self.dirty[victim] = is_write;
        self.lru[victim] = self.tick;
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    /// Whether the line containing `addr` is resident, without touching
    /// LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = (set * self.cfg.assoc as u64) as usize;
        (base..base + self.cfg.assoc as usize).any(|way| self.valid[way] && self.tags[way] == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64B lines = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same line");
        assert!(!c.access(64, false).hit, "next line");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to set 0: line numbers 0, 4, 8 (4 sets).
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, true); // dirty
        c.access(b, false);
        let out = c.access(d, false); // evicts a (LRU), which is dirty
        assert!(!out.hit);
        assert!(out.writeback);
        // Clean eviction does not write back.
        let e = 12 * 64;
        let out2 = c.access(e, false); // evicts b, clean
        assert!(!out2.writeback);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(b, false);
        c.access(d, false); // evicts line 0
                            // Re-fill set so the dirty line must have been written back.
        assert!(!c.probe(0));
    }

    #[test]
    fn probe_does_not_perturb_state() {
        let mut c = small();
        c.access(0, false);
        let before_acc = c.accesses();
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert_eq!(c.accesses(), before_acc);
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = small();
        c.access(0, false);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.accesses(), 1);
        c.reset_stats();
        assert_eq!(c.accesses(), 0);
    }

    #[test]
    fn miss_ratio_computed() {
        let mut c = small();
        assert_eq!(c.miss_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for line in 0..4u64 {
            c.access(line * 64, false);
        }
        for line in 0..4u64 {
            assert!(c.probe(line * 64), "line {line} should be resident");
        }
    }
}

//! Set-associative caches with true-LRU replacement.

use crate::config::CacheConfig;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty line was evicted (write-back traffic to the next
    /// level).
    pub writeback: bool,
}

/// One cache line's bookkeeping, packed so a whole set is contiguous.
///
/// The warming hot loop reads every way of one set per access; keeping
/// tag, recency, and state bits in one 24-byte record means a 2-way set
/// spans 48 bytes (one host cache line) instead of the four separate
/// heap arrays the original tags/valid/dirty/lru layout touched.
#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    lru: u64,
    valid: bool,
    dirty: bool,
}

/// Mirror-array value for ways holding no line. A real tag is an address
/// with at least the line-offset bits shifted off, so it can collide with
/// this sentinel only in degenerate geometries — and even then the valid
/// bit is consulted before a match is believed.
const INVALID_TAG: u64 = u64::MAX;

/// First way whose mirrored tag equals `tag` and whose line is valid.
///
/// The mirror keeps the set's tags in one contiguous `u64` run, so the
/// chunked compare below is a fixed-width `u64x4` operation LLVM lowers
/// to one vector compare + mask per four ways (no nightly `std::simd`).
/// Candidates are confirmed against the packed records in ascending way
/// order, which is exactly the scalar scan's first-match choice: at most
/// one valid way per set can carry a given tag (fills happen only on
/// miss), and sentinel false-positives are rejected by the valid bit.
#[inline]
fn find_way(tags: &[u64], lines: &[Line], tag: u64) -> Option<usize> {
    let mut chunks = tags.chunks_exact(4);
    let mut way = 0usize;
    for c in &mut chunks {
        let mut mask = (c[0] == tag) as u8
            | (((c[1] == tag) as u8) << 1)
            | (((c[2] == tag) as u8) << 2)
            | (((c[3] == tag) as u8) << 3);
        while mask != 0 {
            let w = way + mask.trailing_zeros() as usize;
            if lines[w].valid {
                debug_assert_eq!(lines[w].tag, tag);
                return Some(w);
            }
            mask &= mask - 1;
        }
        way += 4;
    }
    for (i, &t) in chunks.remainder().iter().enumerate() {
        if t == tag && lines[way + i].valid {
            return Some(way + i);
        }
    }
    None
}

/// A write-back, write-allocate, set-associative cache with LRU
/// replacement.
///
/// The cache stores only tags — it models presence, not contents. The same
/// structure and the same `access` path is used both for timed accesses in
/// detailed simulation and for functional warming, so warmed state is
/// exactly the state detailed simulation would have produced for the same
/// in-order access stream.
///
/// Replacement state is bit-identical to the historical four-parallel-Vec
/// layout: hits and victim choice depend only on (valid, tag, lru) per
/// way, which this layout preserves exactly (see the golden-state
/// equivalence tests). The per-set MRU index is a scan-order hint only.
///
/// # Examples
///
/// ```
/// use smarts_uarch::{Cache, CacheConfig};
///
/// let cfg = CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64, latency: 1 };
/// let mut cache = Cache::new(cfg);
/// assert!(!cache.access(0x100, false).hit); // cold miss
/// assert!(cache.access(0x100, false).hit); // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    // lines[set * assoc + way], one packed record per line.
    lines: Vec<Line>,
    // Contiguous tag mirror, same indexing as `lines`; invalid ways hold
    // `INVALID_TAG`. Lookup compares against this dense run (see
    // `find_way`), so the invariant is: `lines[i].valid` implies
    // `tags[i] == lines[i].tag`. Maintained at fill and flush.
    tags: Vec<u64>,
    // Most-recently-touched way per set: checked first on lookup. Purely
    // a performance hint — replacement decisions never read it.
    mru: Vec<u32>,
    tick: u64,
    sets: u64,
    assoc: usize,
    // Fast-path indexing when line size and set count are powers of two
    // (true for every realistic geometry, including both Table 3
    // machines): division/modulo become shift/mask on the hot path.
    line_shift: Option<u32>,
    set_shift: u32,
    set_mask: u64,
    accesses: u64,
    misses: u64,
}

impl Cache {
    /// Creates a cold cache.
    ///
    /// # Panics
    ///
    /// Panics if the configuration geometry does not divide evenly.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets();
        let lines = (sets * cfg.assoc as u64) as usize;
        let line_shift = (cfg.line_bytes.is_power_of_two() && sets.is_power_of_two())
            .then(|| cfg.line_bytes.trailing_zeros());
        Cache {
            cfg,
            lines: vec![Line::default(); lines],
            tags: vec![INVALID_TAG; lines],
            mru: vec![0; sets as usize],
            tick: 0,
            sets,
            assoc: cfg.assoc as usize,
            line_shift,
            set_shift: sets.trailing_zeros(),
            set_mask: sets - 1,
            accesses: 0,
            misses: 0,
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss ratio so far; 0 when no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Resets hit/miss statistics without touching cache contents.
    pub fn reset_stats(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Invalidates all lines (cold restart).
    ///
    /// Recency state is reset along with the valid bits: victim choice
    /// among lines refilled after a flush must not be influenced by
    /// pre-flush access order.
    pub fn flush(&mut self) {
        self.lines.fill(Line::default());
        self.tags.fill(INVALID_TAG);
        self.mru.fill(0);
        self.tick = 0;
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (u64, u64) {
        if let Some(shift) = self.line_shift {
            let line = addr >> shift;
            (line & self.set_mask, line >> self.set_shift)
        } else {
            let line = addr / self.cfg.line_bytes;
            (line % self.sets, line / self.sets)
        }
    }

    /// Accesses the line containing `addr`, allocating on miss.
    ///
    /// `is_write` marks the line dirty (write-allocate); a dirty eviction
    /// is reported via [`CacheOutcome::writeback`].
    #[inline]
    pub fn access(&mut self, addr: u64, is_write: bool) -> CacheOutcome {
        self.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let base = set as usize * self.assoc;

        // MRU fast path: the way that hit last time hits again for any
        // access stream with temporal locality — one compare, no scan.
        let mru = self.mru[set as usize] as usize;
        if let Some(line) = self.lines[base..base + self.assoc].get_mut(mru) {
            if line.valid && line.tag == tag {
                line.lru = tick;
                line.dirty |= is_write;
                return CacheOutcome {
                    hit: true,
                    writeback: false,
                };
            }
        }

        if let Some(way) = find_way(
            &self.tags[base..base + self.assoc],
            &self.lines[base..base + self.assoc],
            tag,
        ) {
            let line = &mut self.lines[base + way];
            line.lru = tick;
            line.dirty |= is_write;
            self.mru[set as usize] = way as u32;
            return CacheOutcome {
                hit: true,
                writeback: false,
            };
        }

        self.misses += 1;
        let set_lines = &mut self.lines[base..base + self.assoc];
        // Choose victim: invalid way first, else true LRU.
        let mut victim = 0;
        let mut best = u64::MAX;
        for (way, line) in set_lines.iter().enumerate() {
            if !line.valid {
                victim = way;
                break;
            }
            if line.lru < best {
                best = line.lru;
                victim = way;
            }
        }
        let line = &mut set_lines[victim];
        let writeback = line.valid && line.dirty;
        *line = Line {
            tag,
            lru: tick,
            valid: true,
            dirty: is_write,
        };
        self.tags[base + victim] = tag;
        self.mru[set as usize] = victim as u32;
        CacheOutcome {
            hit: false,
            writeback,
        }
    }

    /// Pre-touches the set run for `addr`: reads every way's packed
    /// record so an imminent [`Cache::access`] scan finds the set in
    /// host cache. Read-only (`&self`), so it cannot perturb replacement
    /// state — issuing pre-touches for a batch of future accesses before
    /// scanning them in order is bit-identical to not pre-touching.
    #[inline]
    pub fn prefetch_set(&self, addr: u64) {
        let (set, _) = self.set_and_tag(addr);
        let base = set as usize * self.assoc;
        // One read per host cache line the set run spans (packed records
        // are 24 B, so stride 2 lands on every 64-B line): enough to
        // start the fills without re-doing the scan's work.
        let mut touched = 0u64;
        let mut way = 0;
        while way < self.assoc {
            touched ^= self.lines[base + way].lru;
            way += 2;
        }
        // The tag mirror is read first on lookup; one touch per 64-B run
        // of eight 8-B tags starts that fill too.
        way = 0;
        while way < self.assoc {
            touched ^= self.tags[base + way];
            way += 8;
        }
        std::hint::black_box(touched);
    }

    /// Approximate bytes of backing store (packed line records, the tag
    /// mirror, and the per-set MRU hints), for checkpoint footprint
    /// accounting.
    pub fn approx_bytes(&self) -> usize {
        self.lines.len() * std::mem::size_of::<Line>()
            + self.tags.len() * std::mem::size_of::<u64>()
            + self.mru.len() * std::mem::size_of::<u32>()
    }

    /// Appends replacement state, recency hints, and statistics as
    /// fixed-width words for the checkpoint store. Geometry (the config
    /// and its derived shifts) is not written — the loader reconstructs
    /// a cache from the same config and restores only dynamic state, so
    /// the word count is a pure function of the geometry.
    ///
    /// The emitted words are *canonical*: within each set, valid lines
    /// are written most-recent-first with `lru` rewritten to the recency
    /// rank (most recent = number of resident lines, least recent = 1)
    /// and the remaining ways as all-zero words; the MRU hints, the
    /// global tick, and the statistics counters are written as the
    /// constants (0, associativity, 0, 0). Two caches that behave
    /// identically under any future access stream therefore serialize
    /// identically, no matter the absolute access history that built
    /// them — the property sharded-warm fixpoint detection relies on
    /// (DESIGN.md §3.6e). The form is behaviour-preserving: rank
    /// rewriting keeps relative recency, the restored tick exceeds
    /// every rank so later accesses stay strictly newer, way order
    /// within a set is immaterial to lookups, and an MRU hint of way 0
    /// names the most-recent line (hints never change outcomes — see
    /// `golden_state.rs`).
    pub fn save_state(&self, out: &mut Vec<u64>) {
        let mut order: Vec<usize> = Vec::with_capacity(self.assoc);
        for set in 0..self.sets as usize {
            let base = set * self.assoc;
            order.clear();
            order.extend((base..base + self.assoc).filter(|&i| self.lines[i].valid));
            // Distinct lru ticks within a set make this a total order.
            order.sort_by_key(|&i| std::cmp::Reverse(self.lines[i].lru));
            let present = order.len() as u64;
            for (rank, &i) in order.iter().enumerate() {
                let line = &self.lines[i];
                out.push(line.tag);
                out.push(present - rank as u64);
                out.push(1 | ((line.dirty as u64) << 1));
            }
            let absent = self.assoc - order.len();
            out.resize(out.len() + 3 * absent, 0);
        }
        out.resize(out.len() + self.mru.len(), 0);
        out.push(self.assoc as u64);
        out.push(0);
        out.push(0);
    }

    /// Restores state written by [`Cache::save_state`] into a cache of
    /// the same geometry, rebuilding the contiguous tag mirror from the
    /// restored lines. Returns the number of words consumed, or `None`
    /// if `words` is too short.
    pub fn load_state(&mut self, words: &[u64]) -> Option<usize> {
        let needed = 3 * self.lines.len() + self.mru.len() + 3;
        let words = words.get(..needed)?;
        let (line_words, rest) = words.split_at(3 * self.lines.len());
        for (i, chunk) in line_words.chunks_exact(3).enumerate() {
            let valid = chunk[2] & 1 != 0;
            self.lines[i] = Line {
                tag: chunk[0],
                lru: chunk[1],
                valid,
                dirty: chunk[2] & 2 != 0,
            };
            self.tags[i] = if valid { chunk[0] } else { INVALID_TAG };
        }
        let (mru_words, tail) = rest.split_at(self.mru.len());
        for (m, &w) in self.mru.iter_mut().zip(mru_words) {
            *m = w as u32;
        }
        self.tick = tail[0];
        self.accesses = tail[1];
        self.misses = tail[2];
        Some(needed)
    }

    /// Whether the line containing `addr` is resident, without touching
    /// LRU state or statistics.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set as usize * self.assoc;
        find_way(
            &self.tags[base..base + self.assoc],
            &self.lines[base..base + self.assoc],
            tag,
        )
        .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 4 sets × 2 ways × 64B lines = 512 B.
        Cache::new(CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.access(63, false).hit, "same line");
        assert!(!c.access(64, false).hit, "next line");
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to set 0: line numbers 0, 4, 8 (4 sets).
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // a most recent
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small();
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, true); // dirty
        c.access(b, false);
        let out = c.access(d, false); // evicts a (LRU), which is dirty
        assert!(!out.hit);
        assert!(out.writeback);
        // Clean eviction does not write back.
        let e = 12 * 64;
        let out2 = c.access(e, false); // evicts b, clean
        assert!(!out2.writeback);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = small();
        c.access(0, false);
        c.access(0, true); // hit, now dirty
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(b, false);
        c.access(d, false); // evicts line 0
                            // Re-fill set so the dirty line must have been written back.
        assert!(!c.probe(0));
    }

    #[test]
    fn probe_does_not_perturb_state() {
        let mut c = small();
        c.access(0, false);
        let before_acc = c.accesses();
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert_eq!(c.accesses(), before_acc);
    }

    #[test]
    fn flush_clears_contents_not_stats() {
        let mut c = small();
        c.access(0, false);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.accesses(), 1);
        c.reset_stats();
        assert_eq!(c.accesses(), 0);
    }

    #[test]
    fn flush_resets_recency_state() {
        let mut c = small();
        let line = |n: u64| n * 4 * 64; // successive lines of set 0
                                        // Build skewed pre-flush recency: way 1 (line 1) much more recent.
        c.access(line(0), false);
        c.access(line(1), false);
        c.access(line(1), false);
        c.flush();
        // Refill both ways in order, then force an eviction: the victim
        // must be the post-flush LRU (line 2, refilled first), never a
        // choice influenced by pre-flush ticks.
        c.access(line(2), false);
        c.access(line(3), false);
        c.access(line(4), false);
        assert!(!c.probe(line(2)), "post-flush LRU way must be evicted");
        assert!(c.probe(line(3)));
        assert!(c.probe(line(4)));
    }

    #[test]
    fn miss_ratio_computed() {
        let mut c = small();
        assert_eq!(c.miss_ratio(), 0.0);
        c.access(0, false);
        c.access(0, false);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = small();
        for line in 0..4u64 {
            c.access(line * 64, false);
        }
        for line in 0..4u64 {
            assert!(c.probe(line * 64), "line {line} should be resident");
        }
    }

    #[test]
    fn high_assoc_vector_lookup_preserves_hit_and_victim_order() {
        // 8-way × 2 sets: lookups go through two full 4-wide chunks.
        let mut c = Cache::new(CacheConfig {
            size_bytes: 1024,
            assoc: 8,
            line_bytes: 64,
            latency: 1,
        });
        let line = |n: u64| n * 2 * 64; // successive lines of set 0
        for n in 0..8 {
            assert!(!c.access(line(n), false).hit);
        }
        for n in 0..8 {
            assert!(c.access(line(n), false).hit, "way {n} should hit");
        }
        assert!(!c.access(line(8), false).hit); // evicts line 0 (LRU)
        assert!(!c.probe(line(0)));
        for n in 1..9 {
            assert!(c.probe(line(n)), "line {n} should be resident");
        }
    }

    #[test]
    fn mru_fast_path_updates_recency_like_the_scan_path() {
        // Alternate hits between two ways so the MRU hint is wrong half
        // the time; LRU outcomes must match a fresh cache fed the same
        // stream shifted so the hint is always cold (scan path).
        let mut c = small();
        let a = 0u64;
        let b = 4 * 64;
        let d = 8 * 64;
        c.access(a, false);
        c.access(b, false);
        c.access(a, false); // scan-path hit (MRU points at b)
        c.access(a, false); // MRU fast-path hit
        c.access(b, false); // scan-path hit again
        c.access(d, false); // must evict a: recency order is b > a
        assert!(!c.probe(a));
        assert!(c.probe(b));
        assert!(c.probe(d));
    }
}

//! Trace-driven out-of-order superscalar timing model, event-driven.
//!
//! The pipeline replays the correct-path [`ExecRecord`] stream produced by
//! the functional CPU through a cycle-accurate model of the Table 3
//! machines: fetch with branch prediction, in-order dispatch into a
//! register update unit (RUU) and load/store queue, dataflow-ordered
//! issue to typed functional units, a post-commit store buffer draining
//! through MSHRs, and in-order commit.
//!
//! Earlier revisions re-scanned the whole RUU every cycle (once in
//! writeback looking for due completions, once in issue re-evaluating
//! operand readiness) and stepped every cycle even when the machine was
//! provably stalled. This implementation is event-driven with the *same*
//! cycle-level semantics, bit-identical to the scan model kept in
//! [`crate::scan`]:
//!
//! - **Wakeup lists** — each in-flight producer keeps an intrusive list
//!   of the consumers waiting on it; completion walks the list and moves
//!   consumers whose last operand arrived into a ready queue ordered by
//!   sequence number (the scan's oldest-first issue order).
//! - **Completion events** — issued entries sit in a min-heap keyed on
//!   `(complete_cycle, seq)`; writeback pops exactly the due entries
//!   instead of scanning the window.
//! - **Next-event jump** — when a cycle is provably dead (nothing to
//!   commit, issue, complete, drain, dispatch, or fetch), the clock jumps
//!   straight to the earliest pending event (completion, store-buffer
//!   drain, MSHR release, IFQ-entry availability, or fetch refill)
//!   instead of burning one `step_cycle` per stalled tick.
//!
//! Wrong-path instructions are modelled as lost fetch bandwidth: after a
//! misprediction is fetched, the front end supplies nothing until the
//! branch resolves plus the refill penalty. The paper (Section 3.1, citing
//! Cain et al.) argues wrong-path effects on CPI are minimal; our Table 5
//! analogue quantifies the residual bias this leaves.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use crate::bpred::Prediction;
use crate::config::MachineConfig;
use crate::warm::WarmState;
use smarts_energy::ActivityCounters;
use smarts_isa::{ExecRecord, OpClass, Opcode};

/// A supplier of correct-path execution records.
///
/// Implemented by the SMARTS driver (wrapping the functional CPU) and by
/// closures for tests:
///
/// ```
/// use smarts_uarch::TraceSource;
/// use smarts_isa::ExecRecord;
///
/// let mut records: Vec<ExecRecord> = vec![];
/// let mut source = move || records.pop();
/// let _: Option<ExecRecord> = TraceSource::next_record(&mut source);
/// ```
pub trait TraceSource {
    /// Produces the next correct-path record, or `None` at end of stream.
    fn next_record(&mut self) -> Option<ExecRecord>;
}

impl<F> TraceSource for F
where
    F: FnMut() -> Option<ExecRecord>,
{
    fn next_record(&mut self) -> Option<ExecRecord> {
        self()
    }
}

/// Measurement of one detailed-simulation interval.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UnitMeasurement {
    /// Cycles elapsed during the interval.
    pub cycles: u64,
    /// Instructions committed during the interval.
    pub instructions: u64,
    /// Records pulled from the trace source (fetched, possibly not yet
    /// committed when the interval ended).
    pub pulled: u64,
    /// Activity for energy accounting (all-zero when the interval was run
    /// without measurement, e.g. detailed warming).
    pub counters: ActivityCounters,
}

impl UnitMeasurement {
    /// Cycles per committed instruction; 0 when nothing committed.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

const NO_PRODUCER: u64 = u64::MAX;
/// Terminator for the intrusive consumer lists (`seq << 1 | slot` links).
const NO_LINK: u64 = u64::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    Waiting,
    Issued,
    Completed,
}

#[derive(Debug, Clone)]
struct RobEntry {
    seq: u64,
    rec: ExecRecord,
    state: EntryState,
    complete_cycle: u64,
    mispredicted: bool,
    /// Unsatisfied source operands (0..=2); the entry enters the ready
    /// queue when this reaches zero.
    pending: u8,
    /// Head of the intrusive list of consumers waiting on this entry's
    /// result, encoded as `consumer_seq << 1 | src_slot`; [`NO_LINK`]
    /// terminates.
    consumer_head: u64,
    /// Per-source-slot continuation of the producer's consumer list this
    /// entry is threaded onto.
    next_consumer: [u64; 2],
}

#[derive(Debug, Clone)]
struct IfqEntry {
    rec: ExecRecord,
    avail: u64,
    mispredicted: bool,
}

#[derive(Debug, Clone, Copy)]
enum SbState {
    Waiting,
    InFlight { done: u64 },
}

#[derive(Debug, Clone, Copy)]
struct SbEntry {
    addr: u64,
    size: u8,
    state: SbState,
}

#[derive(Debug, Clone, Copy)]
enum LoadPlan {
    Forward,
    Blocked,
    CacheAccess,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FuPool {
    IntAlu = 0,
    IntMulDiv = 1,
    FpAlu = 2,
    FpMulDiv = 3,
}

/// The out-of-order pipeline state for one detailed-simulation episode.
///
/// A `Pipeline` starts empty (the cold-pipeline condition detailed
/// warming repairs) and accumulates state across successive
/// [`Pipeline::run`] calls, so a SMARTS sampling unit is expressed as a
/// warming `run` (unmeasured) followed by a measuring `run` on the same
/// pipeline. Long-history state lives in the [`WarmState`] passed to each
/// call, never in the pipeline itself.
#[derive(Debug, Clone)]
pub struct Pipeline {
    cfg: MachineConfig,
    cycle: u64,
    next_seq: u64,
    rob: VecDeque<RobEntry>,
    ifq: VecDeque<IfqEntry>,
    reg_producer: [u64; 64],
    lsq_used: u32,
    store_buffer: VecDeque<SbEntry>,
    mshrs: Vec<u64>,
    /// Cached `min(mshrs)`: the earliest cycle at which some MSHR is
    /// free, so the common no-free-MSHR probe is O(1) and the next-event
    /// jump knows when a stalled store can start.
    mshr_min_release: u64,
    fus: [Vec<u64>; 4],
    ports_used: u32,
    fetch_stall_until: u64,
    pending_redirect: bool,
    // When wrong-path modelling is on: the next wrong-path fetch pc
    // (instruction index) the front end will pursue until the redirect.
    wrong_path_pc: Option<u64>,
    halted: bool,
    source_done: bool,
    pulled: u64,
    /// Waiting entries whose operands are all available, ordered by seq
    /// (= the scan model's oldest-first issue order). Entries that fail a
    /// structural check (port, FU, MSHR, blocked load) stay queued.
    ready: BTreeSet<u64>,
    /// Scratch for iterating `ready` while issuing (reused allocation).
    issue_scratch: Vec<u64>,
    /// Issued entries awaiting writeback, keyed `(complete_cycle, seq)`.
    completions: BinaryHeap<Reverse<(u64, u64)>>,
    skipped_cycles: u64,
    /// First cycle at which the dead-cycle check runs again after it
    /// last found work (see the backoff note in [`Pipeline::run`]).
    next_skip_check: u64,
}

/// Cycles to wait before re-trying the dead-cycle check after it found
/// work at the current cycle.
const SKIP_RECHECK: u64 = 4;

impl Pipeline {
    /// Creates an empty (cold) pipeline for the given machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        Pipeline {
            cfg: cfg.clone(),
            cycle: 0,
            next_seq: 0,
            rob: VecDeque::with_capacity(cfg.ruu_size as usize),
            ifq: VecDeque::with_capacity(cfg.ifq_size as usize),
            reg_producer: [NO_PRODUCER; 64],
            lsq_used: 0,
            store_buffer: VecDeque::with_capacity(cfg.store_buffer as usize),
            mshrs: vec![0; cfg.mshrs as usize],
            mshr_min_release: 0,
            fus: [
                vec![0; cfg.int_alu_units as usize],
                vec![0; cfg.int_muldiv_units as usize],
                vec![0; cfg.fp_alu_units as usize],
                vec![0; cfg.fp_muldiv_units as usize],
            ],
            ports_used: 0,
            fetch_stall_until: 0,
            pending_redirect: false,
            wrong_path_pc: None,
            halted: false,
            source_done: false,
            pulled: 0,
            ready: BTreeSet::new(),
            issue_scratch: Vec::with_capacity(cfg.issue_width as usize * 2),
            completions: BinaryHeap::with_capacity(cfg.ruu_size as usize),
            skipped_cycles: 0,
            next_skip_check: 0,
        }
    }

    /// The machine configuration this pipeline models.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Current cycle count (monotonic across `run` calls).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Whether a `halt` instruction has committed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether the trace source reported end-of-stream.
    pub fn source_done(&self) -> bool {
        self.source_done
    }

    /// Cycles advanced by the next-event jump instead of being stepped
    /// (a subset of [`Pipeline::cycle`]; diagnostic for tests and
    /// benchmarks).
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Runs detailed simulation until `commits` more instructions commit
    /// (or the stream ends / the program halts).
    ///
    /// With `measure == false` the interval is *detailed warming*: all
    /// microarchitectural state (pipeline and [`WarmState`]) advances
    /// exactly as when measuring, but the returned counters stay zero.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline makes no forward progress for an extended
    /// period (an internal deadlock — indicates a model bug, never a
    /// property of the simulated program).
    pub fn run(
        &mut self,
        warm: &mut WarmState,
        source: &mut dyn TraceSource,
        commits: u64,
        measure: bool,
    ) -> UnitMeasurement {
        let start_cycle = self.cycle;
        let start_pulled = self.pulled;
        let mut counters = ActivityCounters::default();
        let mut committed_total = 0u64;
        let mut idle_cycles = 0u64;

        while committed_total < commits && !self.halted {
            if self.source_done && self.rob.is_empty() && self.ifq.is_empty() {
                break;
            }
            // Dead-cycle skip, with backoff: when the check finds work at
            // the current cycle it tends to keep finding work for a few
            // cycles (drains, back-to-back issue), so re-checking every
            // cycle is pure overhead on busy code. Not checking is always
            // safe — the engine just steps those cycles normally — and a
            // deferred check forfeits at most `SKIP_RECHECK - 1` initial
            // cycles of a stall window, noise against the ~100-cycle
            // memory stalls skipping exists for.
            if self.cycle >= self.next_skip_check {
                if let Some(target) = self.skip_target(warm) {
                    self.skipped_cycles += target - self.cycle;
                    self.cycle = target;
                } else {
                    self.next_skip_check = self.cycle + SKIP_RECHECK;
                }
            }
            let committed = self.step_cycle(
                warm,
                source,
                measure,
                &mut counters,
                commits - committed_total,
            );
            committed_total += committed;
            if committed == 0 {
                idle_cycles += 1;
                assert!(
                    idle_cycles < 1_000_000,
                    "pipeline deadlock at cycle {}: rob={} ifq={} sb={} redirect={}",
                    self.cycle,
                    self.rob.len(),
                    self.ifq.len(),
                    self.store_buffer.len(),
                    self.pending_redirect
                );
            } else {
                idle_cycles = 0;
            }
        }

        UnitMeasurement {
            cycles: self.cycle - start_cycle,
            instructions: committed_total,
            pulled: self.pulled - start_pulled,
            counters,
        }
    }

    // ---- next-event jump -------------------------------------------------

    /// If the current cycle is provably dead — `step_cycle` would change
    /// nothing but the clock — returns the earliest future cycle at which
    /// an event can occur, to jump to directly. Returns `None` when any
    /// stage might act this cycle (conservative: correctness never
    /// depends on skipping).
    ///
    /// Every condition consulted is either an explicit future event time
    /// (collected into the minimum) or pipeline state that cannot change
    /// while no stage executes, so deadness is monotone across the whole
    /// skipped span and the jump lands exactly on the first cycle where
    /// something happens — never past a fetch refill, store drain, MSHR
    /// release, completion, or IFQ availability.
    fn skip_target(&self, warm: &WarmState) -> Option<u64> {
        let cycle = self.cycle;
        let mut next: Option<u64> = None;
        let mut note = |at: u64| {
            next = Some(next.map_or(at, |n: u64| n.min(at)));
        };

        // Issue: a ready entry that would pass its structural checks
        // means the cycle must be stepped. Entries that would `continue`
        // are re-checked against state that only a noted event can
        // change: a blocked load's older store advances via completion
        // events, an MSHR frees at `mshr_min_release`, a functional unit
        // at its busy-until cycle. (These probes are all read-only; the
        // mutating cache/TLB accesses happen only on a real issue.)
        if !self.ready.is_empty() {
            let front_seq = self.rob.front().expect("ready entries are in the ROB").seq;
            for &seq in &self.ready {
                let idx = (seq - front_seq) as usize;
                let entry = &self.rob[idx];
                match entry.rec.class() {
                    OpClass::Load => match self.load_plan(idx) {
                        // Unblocks only after its older store completes —
                        // a completion event already noted below.
                        LoadPlan::Blocked => {}
                        LoadPlan::Forward => return None,
                        LoadPlan::CacheAccess => {
                            // The cache port is free in a dead cycle
                            // (`ports_used` resets before any consumer and
                            // the store buffer started nothing).
                            let addr = entry.rec.mem.expect("load").addr;
                            if warm.hierarchy.l1d_resident(addr) || self.mshr_min_release <= cycle {
                                return None;
                            }
                            note(self.mshr_min_release);
                        }
                    },
                    // Stores, nops, and halts issue unconditionally.
                    OpClass::Store | OpClass::Nop | OpClass::Halt => return None,
                    class => {
                        let (pool, _, _) = self.fu_for(class).expect("execution class has a unit");
                        let mut earliest = u64::MAX;
                        for &busy in &self.fus[pool as usize] {
                            if busy <= cycle {
                                return None; // a unit is free: would issue
                            }
                            earliest = earliest.min(busy);
                        }
                        if earliest != u64::MAX {
                            note(earliest);
                        }
                    }
                }
            }
        }
        // Commit: a completed head would retire this cycle.
        if let Some(head) = self.rob.front() {
            if head.state == EntryState::Completed {
                return None;
            }
        }
        // Writeback: due completions must be processed; future ones are
        // events.
        if let Some(&Reverse((due, _))) = self.completions.peek() {
            if due <= cycle {
                return None;
            }
            note(due);
        }
        // Store-buffer retire: only the front can pop (in-order drain).
        if let Some(front) = self.store_buffer.front() {
            if let SbState::InFlight { done } = front.state {
                if done <= cycle {
                    return None;
                }
                note(done);
            }
        }
        // Store-buffer start: the first waiting store launches as soon as
        // its line is resident or an MSHR frees (the cache port is always
        // free at drain time — `ports_used` resets at the top of the
        // step, before any consumer).
        if let Some(entry) = self
            .store_buffer
            .iter()
            .find(|e| matches!(e.state, SbState::Waiting))
        {
            if warm.hierarchy.l1d_resident(entry.addr) || self.mshr_min_release <= cycle {
                return None;
            }
            note(self.mshr_min_release);
        }
        // Dispatch: the front IFQ entry either dispatches now, becomes
        // available later (event), or is blocked on RUU/LSQ space — which
        // only a commit (driven by a completion event) can free.
        if let Some(front) = self.ifq.front() {
            if front.avail > cycle {
                note(front.avail);
            } else {
                let rob_full = self.rob.len() >= self.cfg.ruu_size as usize;
                let lsq_full = front.rec.class().is_mem() && self.lsq_used >= self.cfg.lsq_size;
                if !rob_full && !lsq_full {
                    return None;
                }
            }
        }
        // Fetch.
        if self.pending_redirect {
            if self.wrong_path_pc.is_some() {
                if self.fetch_stall_until > cycle {
                    note(self.fetch_stall_until);
                } else {
                    return None; // wrong-path fetch touches the I-side
                }
            }
            // No wrong-path modelling: the front end idles until the
            // redirect, which writeback (a completion event) delivers.
        } else if !self.halted && !self.source_done {
            if self.fetch_stall_until > cycle {
                note(self.fetch_stall_until);
            } else if self.ifq.len() < self.cfg.ifq_size as usize {
                return None; // fetch would pull records
            }
            // IFQ full: unblocks via dispatch, handled above.
        }

        next.filter(|&target| target > cycle)
    }

    fn step_cycle(
        &mut self,
        warm: &mut WarmState,
        source: &mut dyn TraceSource,
        measure: bool,
        counters: &mut ActivityCounters,
        max_commit: u64,
    ) -> u64 {
        self.ports_used = 0;
        let committed = self.commit(warm, measure, counters, max_commit);
        self.drain_store_buffer(warm, measure, counters);
        self.writeback(measure, counters);
        self.issue(warm, measure, counters);
        self.dispatch(measure, counters);
        self.fetch(warm, source, measure, counters);
        self.cycle += 1;
        committed
    }

    // ---- commit ---------------------------------------------------------

    fn commit(
        &mut self,
        warm: &mut WarmState,
        measure: bool,
        counters: &mut ActivityCounters,
        max_commit: u64,
    ) -> u64 {
        let budget = (self.cfg.commit_width as u64).min(max_commit);
        let mut n = 0;
        while n < budget {
            let Some(head) = self.rob.front() else { break };
            if head.state != EntryState::Completed || head.complete_cycle > self.cycle {
                break;
            }
            let class = head.rec.class();
            if class == OpClass::Store {
                if self.store_buffer.len() >= self.cfg.store_buffer as usize {
                    break; // store-buffer overflow stalls commit
                }
                let mem = head.rec.mem.expect("store has a memory access");
                self.store_buffer.push_back(SbEntry {
                    addr: mem.addr,
                    size: mem.size,
                    state: SbState::Waiting,
                });
                if measure {
                    counters.store_buffer_ops += 1;
                }
            }
            let head = self.rob.pop_front().expect("head checked above");
            if class.is_control() {
                warm.bpred
                    .update(head.rec.pc, class, head.rec.taken, head.rec.next_pc);
                if measure {
                    counters.bpred_updates += 1;
                }
            }
            if class.is_mem() {
                self.lsq_used -= 1;
            }
            if class == OpClass::Halt {
                self.halted = true;
            }
            if measure {
                counters.commits += 1;
            }
            n += 1;
            if self.halted {
                break;
            }
        }
        n
    }

    // ---- store buffer ----------------------------------------------------

    fn drain_store_buffer(
        &mut self,
        warm: &mut WarmState,
        measure: bool,
        counters: &mut ActivityCounters,
    ) {
        // Retire finished stores in order from the head.
        while let Some(front) = self.store_buffer.front() {
            match front.state {
                SbState::InFlight { done } if done <= self.cycle => {
                    self.store_buffer.pop_front();
                }
                _ => break,
            }
        }
        // Start at most one waiting store per cycle (single write port on
        // the buffer), if a data-cache port and — on a miss — an MSHR are
        // available. In-flight stores overlap through the MSHRs.
        if self.ports_used >= self.cfg.l1d_ports {
            return;
        }
        let Some(pos) = self
            .store_buffer
            .iter()
            .position(|e| matches!(e.state, SbState::Waiting))
        else {
            return;
        };
        let addr = self.store_buffer[pos].addr;
        let resident = warm.hierarchy.l1d_resident(addr);
        if !resident && !self.mshr_available() {
            return;
        }
        let res = warm.hierarchy.access_data(addr, true);
        self.ports_used += 1;
        if !res.l1_hit {
            self.mshr_allocate(self.cycle + res.latency);
        }
        self.store_buffer[pos].state = SbState::InFlight {
            done: self.cycle + res.latency,
        };
        if measure {
            counters.l1d_accesses += 1;
            counters.l2_accesses += res.l2_accesses;
            counters.mem_accesses += res.mem_accesses;
        }
    }

    /// Whether some MSHR is free this cycle — O(1) via the cached
    /// minimum busy-until cycle (free slots are interchangeable: any
    /// release at or before the current cycle stays free until reused).
    fn mshr_available(&self) -> bool {
        self.mshr_min_release <= self.cycle
    }

    /// Claims a free MSHR until `until`. Callers check
    /// [`Pipeline::mshr_available`] (or residency) first, so a free slot
    /// exists. Which free slot is overwritten is unobservable — all free
    /// slots remain free for every future query until reused — so the
    /// first-free choice matches the scan model bit-for-bit.
    fn mshr_allocate(&mut self, until: u64) {
        let cycle = self.cycle;
        if let Some(slot) = self.mshrs.iter_mut().find(|release| **release <= cycle) {
            *slot = until;
        }
        self.mshr_min_release = self.mshrs.iter().copied().min().unwrap_or(0);
    }

    // ---- writeback -------------------------------------------------------

    fn writeback(&mut self, measure: bool, counters: &mut ActivityCounters) {
        let cycle = self.cycle;
        let mut redirect_at: Option<u64> = None;
        while let Some(&Reverse((due, seq))) = self.completions.peek() {
            if due > cycle {
                break;
            }
            self.completions.pop();
            let front_seq = self.rob.front().expect("issued entry is in the ROB").seq;
            let idx = (seq - front_seq) as usize;
            let entry = &mut self.rob[idx];
            debug_assert_eq!(entry.state, EntryState::Issued);
            entry.state = EntryState::Completed;
            if measure {
                counters.window_wakeups += 1;
                if entry.rec.inst.defs().is_some() {
                    counters.regfile_writes += 1;
                }
            }
            if entry.mispredicted {
                if measure {
                    counters.branch_mispredicts += 1;
                }
                redirect_at = Some(
                    redirect_at
                        .unwrap_or(0)
                        .max(entry.complete_cycle + self.cfg.bpred.mispred_penalty),
                );
            }
            // Wake the consumers waiting on this result. They are all
            // younger than the producer, hence still in the ROB.
            let mut link = std::mem::replace(&mut entry.consumer_head, NO_LINK);
            while link != NO_LINK {
                let consumer_seq = link >> 1;
                let slot = (link & 1) as usize;
                let consumer = &mut self.rob[(consumer_seq - front_seq) as usize];
                link = consumer.next_consumer[slot];
                consumer.pending -= 1;
                if consumer.pending == 0 {
                    self.ready.insert(consumer_seq);
                }
            }
        }
        if let Some(resume) = redirect_at {
            self.fetch_stall_until = self.fetch_stall_until.max(resume);
            self.pending_redirect = false;
            self.wrong_path_pc = None;
        }
    }

    // ---- issue -----------------------------------------------------------

    fn load_plan(&self, idx: usize) -> LoadPlan {
        let mem = self.rob[idx].rec.mem.expect("load has a memory access");
        let (a0, a1) = (mem.addr, mem.addr + mem.size as u64);
        // Youngest older overlapping store in the window wins.
        for j in (0..idx).rev() {
            let other = &self.rob[j];
            if other.rec.class() != OpClass::Store {
                continue;
            }
            let om = other.rec.mem.expect("store has a memory access");
            let (b0, b1) = (om.addr, om.addr + om.size as u64);
            if a0 < b1 && b0 < a1 {
                return if other.state == EntryState::Completed && other.complete_cycle <= self.cycle
                {
                    LoadPlan::Forward
                } else {
                    LoadPlan::Blocked
                };
            }
        }
        // Post-commit stores still draining also forward.
        for sb in &self.store_buffer {
            let (b0, b1) = (sb.addr, sb.addr + sb.size as u64);
            if a0 < b1 && b0 < a1 {
                return LoadPlan::Forward;
            }
        }
        LoadPlan::CacheAccess
    }

    fn fu_for(&self, class: OpClass) -> Option<(FuPool, u64, bool)> {
        let lat = &self.cfg.latencies;
        match class {
            OpClass::IntAlu
            | OpClass::CondBranch
            | OpClass::Jump
            | OpClass::Call
            | OpClass::Return => Some((FuPool::IntAlu, lat.int_alu, true)),
            OpClass::IntMul => Some((FuPool::IntMulDiv, lat.int_mul, true)),
            OpClass::IntDiv => Some((FuPool::IntMulDiv, lat.int_div, false)),
            OpClass::FpAlu => Some((FuPool::FpAlu, lat.fp_alu, true)),
            OpClass::FpMul => Some((FuPool::FpMulDiv, lat.fp_mul, true)),
            OpClass::FpDiv => Some((FuPool::FpMulDiv, lat.fp_div, false)),
            _ => None,
        }
    }

    fn issue(&mut self, warm: &mut WarmState, measure: bool, counters: &mut ActivityCounters) {
        if self.ready.is_empty() {
            return;
        }
        let Some(front) = self.rob.front() else {
            return;
        };
        let front_seq = front.seq;
        let mut issued = 0u32;
        let cycle = self.cycle;
        // The ready queue iterates in ascending seq = the scan model's
        // oldest-first window order; entries that fail a structural check
        // stay queued for the next cycle, consuming no issue slot —
        // exactly the scan's `continue`.
        let mut scratch = std::mem::take(&mut self.issue_scratch);
        scratch.clear();
        scratch.extend(self.ready.iter().copied());
        for &seq in &scratch {
            if issued >= self.cfg.issue_width {
                break;
            }
            let idx = (seq - front_seq) as usize;
            debug_assert_eq!(self.rob[idx].state, EntryState::Waiting);
            let class = self.rob[idx].rec.class();
            let n_srcs = self.rob[idx].rec.inst.uses().iter().flatten().count() as u64;

            let complete_cycle = match class {
                OpClass::Load => match self.load_plan(idx) {
                    LoadPlan::Blocked => continue,
                    LoadPlan::Forward => {
                        if measure {
                            counters.lsq_searches += 1;
                        }
                        cycle + 1
                    }
                    LoadPlan::CacheAccess => {
                        if self.ports_used >= self.cfg.l1d_ports {
                            continue;
                        }
                        let addr = self.rob[idx].rec.mem.expect("load").addr;
                        let resident = warm.hierarchy.l1d_resident(addr);
                        if !resident && !self.mshr_available() {
                            continue;
                        }
                        let tlb_hit = warm.dtlb.access(addr);
                        let res = warm.hierarchy.access_data(addr, false);
                        self.ports_used += 1;
                        if !res.l1_hit {
                            self.mshr_allocate(cycle + res.latency);
                        }
                        let mut latency = res.latency;
                        if !tlb_hit {
                            latency += self.cfg.dtlb.miss_penalty;
                        }
                        if measure {
                            counters.lsq_searches += 1;
                            counters.dtlb_accesses += 1;
                            counters.l1d_accesses += 1;
                            counters.l2_accesses += res.l2_accesses;
                            counters.mem_accesses += res.mem_accesses;
                        }
                        cycle + latency
                    }
                },
                OpClass::Store => {
                    // Stores "execute" by computing address + reading data;
                    // the memory write happens post-commit from the store
                    // buffer. The D-TLB is consulted at execute time.
                    let addr = self.rob[idx].rec.mem.expect("store").addr;
                    let tlb_hit = warm.dtlb.access(addr);
                    if measure {
                        counters.dtlb_accesses += 1;
                    }
                    let penalty = if tlb_hit {
                        0
                    } else {
                        self.cfg.dtlb.miss_penalty
                    };
                    cycle + 1 + penalty
                }
                OpClass::Nop | OpClass::Halt => cycle + 1,
                _ => {
                    let (pool, latency, pipelined) =
                        self.fu_for(class).expect("execution class has a unit");
                    let units = &mut self.fus[pool as usize];
                    let Some(unit) = units.iter_mut().find(|busy| **busy <= cycle) else {
                        continue; // structural hazard
                    };
                    *unit = if pipelined {
                        cycle + 1
                    } else {
                        cycle + latency
                    };
                    if measure {
                        match class {
                            OpClass::IntMul => counters.int_mul_ops += 1,
                            OpClass::IntDiv => counters.int_div_ops += 1,
                            OpClass::FpAlu => counters.fp_alu_ops += 1,
                            OpClass::FpMul => counters.fp_mul_ops += 1,
                            OpClass::FpDiv => counters.fp_div_ops += 1,
                            _ => counters.int_alu_ops += 1,
                        }
                    }
                    cycle + latency
                }
            };

            self.ready.remove(&seq);
            let entry = &mut self.rob[idx];
            entry.state = EntryState::Issued;
            entry.complete_cycle = complete_cycle;
            self.completions.push(Reverse((complete_cycle, seq)));
            issued += 1;
            if measure {
                counters.window_issues += 1;
                counters.regfile_reads += n_srcs;
            }
        }
        self.issue_scratch = scratch;
    }

    // ---- dispatch ----------------------------------------------------------

    fn dispatch(&mut self, measure: bool, counters: &mut ActivityCounters) {
        let mut n = 0;
        while n < self.cfg.decode_width {
            let Some(front) = self.ifq.front() else { break };
            if front.avail > self.cycle {
                break;
            }
            if self.rob.len() >= self.cfg.ruu_size as usize {
                break;
            }
            let class = front.rec.class();
            if class.is_mem() && self.lsq_used >= self.cfg.lsq_size {
                break;
            }
            let ifq_entry = self.ifq.pop_front().expect("front checked above");
            let seq = self.next_seq;
            self.next_seq += 1;
            // Resolve each source: a producer that has left the ROB (or
            // already completed) satisfies the operand immediately;
            // otherwise thread this entry onto the producer's consumer
            // list for wakeup at its completion.
            let front_seq = self.rob.front().map(|e| e.seq);
            let mut next_consumer = [NO_LINK; 2];
            let mut pending = 0u8;
            for (slot, used) in ifq_entry.rec.inst.uses().iter().enumerate() {
                let Some(r) = used else { continue };
                let src = self.reg_producer[r.flat()];
                if src == NO_PRODUCER {
                    continue;
                }
                let Some(front_seq) = front_seq else { continue };
                if src < front_seq {
                    continue; // producer already committed
                }
                let producer = &mut self.rob[(src - front_seq) as usize];
                if producer.state != EntryState::Completed {
                    pending += 1;
                    next_consumer[slot] = producer.consumer_head;
                    producer.consumer_head = (seq << 1) | slot as u64;
                }
            }
            if let Some(def) = ifq_entry.rec.inst.defs() {
                self.reg_producer[def.flat()] = seq;
            }
            if class.is_mem() {
                self.lsq_used += 1;
            }
            self.rob.push_back(RobEntry {
                seq,
                rec: ifq_entry.rec,
                state: EntryState::Waiting,
                complete_cycle: 0,
                mispredicted: ifq_entry.mispredicted,
                pending,
                consumer_head: NO_LINK,
                next_consumer,
            });
            if pending == 0 {
                self.ready.insert(seq);
            }
            if measure {
                counters.decodes += 1;
                counters.renames += 1;
            }
            n += 1;
        }
    }

    // ---- fetch ---------------------------------------------------------------

    fn fetch(
        &mut self,
        warm: &mut WarmState,
        source: &mut dyn TraceSource,
        measure: bool,
        counters: &mut ActivityCounters,
    ) {
        if self.pending_redirect {
            self.fetch_wrong_path(warm, measure, counters);
            return;
        }
        if self.fetch_stall_until > self.cycle || self.halted || self.source_done {
            return;
        }
        let line_bytes = self.cfg.l1i.line_bytes;
        let mut fetched = 0u32;
        let mut taken_seen = 0u32;
        let mut current_line = u64::MAX;

        while fetched < self.cfg.fetch_width && self.ifq.len() < self.cfg.ifq_size as usize {
            let Some(rec) = source.next_record() else {
                self.source_done = true;
                break;
            };
            self.pulled += 1;
            let fetch_addr = rec.fetch_addr();
            let line = fetch_addr / line_bytes;
            let mut avail = self.cycle;
            if line != current_line {
                current_line = line;
                let tlb_hit = warm.itlb.access(fetch_addr);
                let res = warm.hierarchy.access_instr(fetch_addr);
                if measure {
                    counters.itlb_accesses += 1;
                    counters.l1i_accesses += 1;
                    counters.l2_accesses += res.l2_accesses;
                    counters.mem_accesses += res.mem_accesses;
                }
                let mut delay = 0;
                if !tlb_hit {
                    delay += self.cfg.itlb.miss_penalty;
                }
                if !res.l1_hit {
                    // Extra cycles beyond the pipelined L1 hit latency.
                    delay += res.latency - self.cfg.l1i.latency;
                }
                if delay > 0 {
                    avail = self.cycle + delay;
                    self.fetch_stall_until = avail;
                }
            }
            if measure {
                counters.fetches += 1;
            }

            let class = rec.class();
            let mut mispredicted = false;
            let mut predicted_taken = false;
            let mut wrong_pred = Prediction {
                taken: false,
                target: None,
            };
            if class.is_control() {
                let direct_target = match rec.inst.op {
                    Opcode::Jal => Some(rec.inst.imm as u64),
                    _ => None,
                };
                let pred = warm.bpred.predict(rec.pc, class, direct_target);
                if measure {
                    counters.bpred_lookups += 1;
                    counters.btb_lookups += 1;
                }
                let correct = if class == OpClass::CondBranch {
                    pred.taken == rec.taken && (!rec.taken || pred.target == Some(rec.next_pc))
                } else {
                    pred.target == Some(rec.next_pc)
                };
                mispredicted = !correct;
                predicted_taken = pred.taken;
                wrong_pred = pred;
            }

            self.ifq.push_back(IfqEntry {
                rec,
                avail,
                mispredicted,
            });
            fetched += 1;

            if mispredicted {
                // The front end now fetches the wrong path: no further
                // correct-path instructions until the branch resolves.
                self.pending_redirect = true;
                if self.cfg.model_wrong_path {
                    self.wrong_path_pc = Some(wrong_path_start(&rec, wrong_pred));
                }
                break;
            }
            if predicted_taken {
                taken_seen += 1;
                if taken_seen >= self.cfg.bpred.predictions_per_cycle {
                    break;
                }
            }
            if self.fetch_stall_until > self.cycle {
                break; // line miss: later instructions arrive with the line
            }
        }
    }

    /// Pursues the wrong path after a fetched misprediction: sequential
    /// fetch from the predicted (wrong) pc, touching the I-TLB and
    /// I-cache only — wrong-path instructions consume fetch bandwidth and
    /// pollute the instruction-side state, but never enter the window.
    fn fetch_wrong_path(
        &mut self,
        warm: &mut WarmState,
        measure: bool,
        counters: &mut ActivityCounters,
    ) {
        let Some(mut pc) = self.wrong_path_pc else {
            return;
        };
        if self.fetch_stall_until > self.cycle {
            return;
        }
        let line_bytes = self.cfg.l1i.line_bytes;
        let mut current_line = u64::MAX;
        for _ in 0..self.cfg.fetch_width {
            let fetch_addr = smarts_isa::Program::fetch_addr(pc);
            let line = fetch_addr / line_bytes;
            if line != current_line {
                current_line = line;
                let tlb_hit = warm.itlb.access(fetch_addr);
                let res = warm.hierarchy.access_instr(fetch_addr);
                if measure {
                    counters.itlb_accesses += 1;
                    counters.l1i_accesses += 1;
                    counters.l2_accesses += res.l2_accesses;
                    counters.mem_accesses += res.mem_accesses;
                }
                let mut delay = 0;
                if !tlb_hit {
                    delay += self.cfg.itlb.miss_penalty;
                }
                if !res.l1_hit {
                    delay += res.latency - self.cfg.l1i.latency;
                }
                if delay > 0 {
                    // The wrong path stalls on its own misses, exactly
                    // like correct-path fetch.
                    self.fetch_stall_until = self.cycle + delay;
                    pc += 1;
                    break;
                }
            }
            if measure {
                counters.fetches += 1;
            }
            pc += 1;
        }
        self.wrong_path_pc = Some(pc);
    }
}

/// The first instruction index of the predicted-but-wrong path.
fn wrong_path_start(rec: &smarts_isa::ExecRecord, pred: Prediction) -> u64 {
    match pred.target {
        // Predicted taken toward a concrete (wrong or stale) target.
        Some(target) if pred.taken => target,
        // Predicted not-taken (or no target available): fall through.
        _ => rec.pc + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::ScanPipeline;
    use smarts_isa::{reg, Asm, Cpu, Memory, Program};

    /// Functional CPU wrapped as a trace source.
    struct CpuSource {
        cpu: Cpu,
        mem: Memory,
        program: Program,
    }

    impl CpuSource {
        fn new(program: Program) -> Self {
            CpuSource {
                cpu: Cpu::new(),
                mem: Memory::new(),
                program,
            }
        }
    }

    impl TraceSource for CpuSource {
        fn next_record(&mut self) -> Option<ExecRecord> {
            if self.cpu.halted() {
                return None;
            }
            self.cpu.step(&self.program, &mut self.mem).ok()
        }
    }

    fn counted_loop(iters: i64) -> Program {
        let mut a = Asm::new();
        a.li(reg::T0, 0);
        a.li(reg::T1, iters);
        let top = a.label();
        a.bind(top).unwrap();
        a.addi(reg::T0, reg::T0, 1);
        a.blt(reg::T0, reg::T1, top);
        a.halt();
        a.finish().unwrap()
    }

    fn run_program(program: Program, cfg: &MachineConfig) -> UnitMeasurement {
        let mut warm = WarmState::new(cfg);
        let mut pipeline = Pipeline::new(cfg);
        let mut source = CpuSource::new(program);
        pipeline.run(&mut warm, &mut source, u64::MAX, true)
    }

    /// Runs `program` through the scan reference model.
    fn run_scan(program: Program, cfg: &MachineConfig) -> UnitMeasurement {
        let mut warm = WarmState::new(cfg);
        let mut pipeline = ScanPipeline::new(cfg);
        let mut source = CpuSource::new(program);
        pipeline.run(&mut warm, &mut source, u64::MAX, true)
    }

    #[test]
    fn runs_simple_loop_to_halt() {
        let cfg = MachineConfig::eight_way();
        let m = run_program(counted_loop(1000), &cfg);
        // 2 setup + 2×1000 loop + 1 halt.
        assert_eq!(m.instructions, 2003);
        assert!(m.cycles > 0);
        assert!(m.cpi() > 0.1 && m.cpi() < 20.0, "cpi = {}", m.cpi());
        assert_eq!(m.counters.commits, 2003);
    }

    /// A loop whose body is `body_len` adds, either all dependent on one
    /// register or spread round-robin over eight registers.
    fn add_loop(iters: i64, body_len: u32, dependent: bool) -> Program {
        let mut a = Asm::new();
        a.li(reg::S0, 0);
        a.li(reg::S1, iters);
        let top = a.label();
        a.bind(top).unwrap();
        for i in 0..body_len {
            let r = if dependent {
                reg::T0
            } else {
                reg::T0 + (i % 8) as u8
            };
            a.addi(r, r, 1);
        }
        a.addi(reg::S0, reg::S0, 1);
        a.blt(reg::S0, reg::S1, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn dependent_chain_is_slower_than_independent_ops() {
        let cfg = MachineConfig::eight_way();
        // Loop bodies keep the I-cache warm so dataflow dominates.
        let m_dep = run_program(add_loop(500, 16, true), &cfg);
        let m_ind = run_program(add_loop(500, 16, false), &cfg);
        assert!(
            m_dep.cycles > m_ind.cycles * 2,
            "dep {} vs ind {}",
            m_dep.cycles,
            m_ind.cycles
        );
        // A fully dependent chain commits ~1 instruction per cycle.
        assert!(m_dep.cpi() > 0.8, "cpi = {}", m_dep.cpi());
        // Independent ops enjoy superscalar issue.
        assert!(m_ind.cpi() < 0.6, "cpi = {}", m_ind.cpi());
    }

    /// A load loop: stride 0 keeps hitting one line, a large stride misses
    /// every time. The loop body keeps the I-cache warm.
    fn load_loop(iters: i64, stride: i64) -> Program {
        let mut a = Asm::new();
        a.li(reg::S0, 0x10_0000);
        a.li(reg::S1, 0);
        a.li(reg::S2, iters);
        let top = a.label();
        a.bind(top).unwrap();
        a.ld(reg::T0, reg::S0, 0);
        a.add(reg::T1, reg::T1, reg::T0);
        a.addi(reg::S0, reg::S0, stride);
        a.addi(reg::S1, reg::S1, 1);
        a.blt(reg::S1, reg::S2, top);
        a.halt();
        a.finish().unwrap()
    }

    #[test]
    fn cache_misses_increase_cpi() {
        let cfg = MachineConfig::eight_way();
        // Stride of 1 MiB: distinct L2 sets, every load misses to memory.
        let m_miss = run_program(load_loop(400, 1 << 20), &cfg);
        let m_hit = run_program(load_loop(400, 0), &cfg);
        assert!(
            m_miss.cycles > m_hit.cycles * 3,
            "miss {} vs hit {}",
            m_miss.cycles,
            m_hit.cycles
        );
        assert!(m_miss.counters.mem_accesses >= 390);
    }

    #[test]
    fn store_load_forwarding_beats_cache_roundtrip() {
        let cfg = MachineConfig::eight_way();
        let mut a = Asm::new();
        a.li(reg::S0, 0x5000);
        a.li(reg::S1, 0);
        a.li(reg::S2, 500);
        let top = a.label();
        a.bind(top).unwrap();
        a.sd(reg::T0, reg::S0, 0);
        a.ld(reg::T1, reg::S0, 0); // forwarded from the store
        a.addi(reg::S1, reg::S1, 1);
        a.blt(reg::S1, reg::S2, top);
        a.halt();
        let m = run_program(a.finish().unwrap(), &cfg);
        // With forwarding, data-side traffic is the single cold-line fill
        // (mem accesses also include the handful of cold I-cache lines).
        assert!(
            m.counters.mem_accesses <= 4,
            "mem = {}",
            m.counters.mem_accesses
        );
        assert!(m.cpi() < 3.0, "cpi = {}", m.cpi());
    }

    #[test]
    fn mispredictions_cost_cycles() {
        let cfg = MachineConfig::eight_way();
        // Identical loop bodies; the inner branch is either always taken
        // (trivially predictable) or keyed to a pseudo-random bit.
        fn branchy(pseudo_random: bool) -> Program {
            let mut a = Asm::new();
            a.li(reg::S0, 0x9E3779B9);
            a.li(reg::T1, 0); // i
            a.li(reg::T2, 4000);
            a.li(reg::S2, 6364136223846793005);
            a.li(reg::S3, 1442695040888963407);
            let top = a.label();
            let skip = a.label();
            a.bind(top).unwrap();
            a.mul(reg::S0, reg::S0, reg::S2);
            a.add(reg::S0, reg::S0, reg::S3);
            if pseudo_random {
                a.srli(reg::T3, reg::S0, 63);
            } else {
                a.li(reg::T3, 1);
            }
            a.beqz(reg::T3, skip);
            a.addi(reg::T5, reg::T5, 1);
            a.bind(skip).unwrap();
            a.addi(reg::T1, reg::T1, 1);
            a.blt(reg::T1, reg::T2, top);
            a.halt();
            a.finish().unwrap()
        }

        fn run_with_bpred_stats(program: Program) -> (UnitMeasurement, f64) {
            let cfg = MachineConfig::eight_way();
            let mut warm = WarmState::new(&cfg);
            let mut pipeline = Pipeline::new(&cfg);
            let mut source = CpuSource::new(program);
            let m = pipeline.run(&mut warm, &mut source, u64::MAX, true);
            (m, warm.bpred.mispredict_ratio())
        }

        let (predictable, ratio_p) = run_with_bpred_stats(branchy(false));
        let (random, ratio_r) = run_with_bpred_stats(branchy(true));
        assert!(ratio_p < 0.02, "predictable mispredict ratio {ratio_p}");
        assert!(ratio_r > 0.10, "random mispredict ratio {ratio_r}");
        assert!(
            random.cpi() > predictable.cpi() * 1.3,
            "random cpi {} (mispred {ratio_r}) vs predictable cpi {} (mispred {ratio_p})",
            random.cpi(),
            predictable.cpi()
        );
        let _ = cfg;
    }

    #[test]
    fn warming_interval_reports_zero_counters() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let mut pipeline = Pipeline::new(&cfg);
        let mut source = CpuSource::new(counted_loop(500));
        let warm_run = pipeline.run(&mut warm, &mut source, 300, false);
        assert_eq!(warm_run.instructions, 300);
        assert_eq!(warm_run.counters, ActivityCounters::default());
        // Continue measuring on the same pipeline.
        let measured = pipeline.run(&mut warm, &mut source, 500, true);
        assert!(measured.instructions > 0);
        assert!(measured.counters.commits > 0);
    }

    #[test]
    fn split_runs_match_single_run_cycle_count() {
        let cfg = MachineConfig::eight_way();
        let program = counted_loop(2000);

        let mut warm1 = WarmState::new(&cfg);
        let mut pipe1 = Pipeline::new(&cfg);
        let mut src1 = CpuSource::new(program.clone());
        let whole = pipe1.run(&mut warm1, &mut src1, u64::MAX, true);

        let mut warm2 = WarmState::new(&cfg);
        let mut pipe2 = Pipeline::new(&cfg);
        let mut src2 = CpuSource::new(program);
        let first = pipe2.run(&mut warm2, &mut src2, 1500, true);
        let rest = pipe2.run(&mut warm2, &mut src2, u64::MAX, true);
        assert_eq!(first.instructions, 1500);
        assert_eq!(whole.instructions, first.instructions + rest.instructions);
        assert_eq!(whole.cycles, first.cycles + rest.cycles);
    }

    #[test]
    fn halt_stops_the_pipeline() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let mut pipeline = Pipeline::new(&cfg);
        let mut source = CpuSource::new(counted_loop(10));
        let m = pipeline.run(&mut warm, &mut source, u64::MAX, true);
        assert!(pipeline.is_halted());
        assert_eq!(m.instructions, 23);
        // Further runs are no-ops.
        let again = pipeline.run(&mut warm, &mut source, u64::MAX, true);
        assert_eq!(again.instructions, 0);
    }

    #[test]
    fn sixteen_way_is_no_slower_than_eight_way() {
        let program = counted_loop(3000);
        let m8 = run_program(program.clone(), &MachineConfig::eight_way());
        let m16 = run_program(program, &MachineConfig::sixteen_way());
        assert!(
            m16.cycles <= m8.cycles * 11 / 10,
            "16-way {} vs 8-way {}",
            m16.cycles,
            m8.cycles
        );
    }

    #[test]
    fn wrong_path_fetch_pollutes_icache_but_barely_moves_cpi() {
        // The Section 4.5 corroboration at unit-test scale: turning on
        // wrong-path fetch modelling adds instruction-side traffic but
        // changes CPI only marginally.
        fn run(model_wrong_path: bool) -> (UnitMeasurement, u64) {
            let mut cfg = MachineConfig::eight_way();
            cfg.model_wrong_path = model_wrong_path;
            let mut warm = WarmState::new(&cfg);
            let mut pipeline = Pipeline::new(&cfg);
            // A loop with a data-dependent (mispredicting) branch.
            let mut a = Asm::new();
            a.li(reg::S0, 0x9E3779B9);
            a.li(reg::S2, 6364136223846793005);
            a.li(reg::T1, 3000);
            let top = a.label();
            let skip = a.label();
            a.bind(top).unwrap();
            a.mul(reg::S0, reg::S0, reg::S2);
            a.srli(reg::T3, reg::S0, 63);
            a.beqz(reg::T3, skip);
            a.addi(reg::T5, reg::T5, 1);
            a.bind(skip).unwrap();
            a.addi(reg::T1, reg::T1, -1);
            a.bnez(reg::T1, top);
            a.halt();
            let mut source = CpuSource::new(a.finish().unwrap());
            let m = pipeline.run(&mut warm, &mut source, u64::MAX, true);
            (m, warm.hierarchy.l1i().accesses())
        }
        let (off, l1i_off) = run(false);
        let (on, l1i_on) = run(true);
        assert_eq!(off.instructions, on.instructions);
        assert!(l1i_on > l1i_off, "wrong-path fetch must add I-side traffic");
        let delta = (on.cpi() - off.cpi()).abs() / off.cpi();
        assert!(delta < 0.05, "wrong-path CPI delta {delta} should be small");
    }

    #[test]
    fn store_buffer_pressure_throttles_commit() {
        let cfg = MachineConfig::eight_way();
        // A burst of stores striding 1 MiB: every store misses, filling the
        // store buffer and MSHRs.
        let mut a = Asm::new();
        a.li(reg::S0, 0x100_0000);
        for i in 0..400 {
            a.sd(reg::T0, reg::S0, (i as i64) << 20);
        }
        a.halt();
        let m = run_program(a.finish().unwrap(), &cfg);
        // Store misses overlap through 8 MSHRs but still dominate runtime.
        assert!(m.cpi() > 2.0, "cpi = {}", m.cpi());
    }

    #[test]
    fn cycle_skipping_engages_and_matches_scan_on_memory_stalls() {
        // A miss-every-iteration load loop spends most of its cycles
        // stalled on memory: the next-event jump must engage, and the
        // total must stay bit-identical to the scan reference.
        let cfg = MachineConfig::eight_way();
        let program = load_loop(400, 1 << 20);

        let mut warm = WarmState::new(&cfg);
        let mut pipeline = Pipeline::new(&cfg);
        let mut source = CpuSource::new(program.clone());
        let event = pipeline.run(&mut warm, &mut source, u64::MAX, true);
        assert!(
            pipeline.skipped_cycles() > event.cycles / 4,
            "skipped {} of {} cycles",
            pipeline.skipped_cycles(),
            event.cycles
        );

        let scanned = run_scan(program, &cfg);
        assert_eq!(event, scanned);
    }

    #[test]
    fn skip_never_jumps_past_fetch_refill_or_store_drain() {
        // Store bursts keep the store buffer draining through MSHRs while
        // strided code misses the I-cache, so the quiescent spans are
        // bounded by store-drain, MSHR-release, and fetch-refill events.
        // Bit-equality with the scan model (which steps every cycle)
        // while skipping engaged proves no jump overshot an event.
        let cfg = MachineConfig::eight_way();
        let mut a = Asm::new();
        a.li(reg::S0, 0x100_0000);
        for i in 0..200 {
            a.sd(reg::T0, reg::S0, (i as i64) << 20);
            // Pad with dependent adds so commit outruns the drain and the
            // buffer alternates between full and empty.
            for _ in 0..8 {
                a.addi(reg::T1, reg::T1, 1);
            }
        }
        a.halt();
        let program = a.finish().unwrap();

        let mut warm = WarmState::new(&cfg);
        let mut pipeline = Pipeline::new(&cfg);
        let mut source = CpuSource::new(program.clone());
        let event = pipeline.run(&mut warm, &mut source, u64::MAX, true);
        assert!(pipeline.skipped_cycles() > 0, "skipping never engaged");

        let scanned = run_scan(program, &cfg);
        assert_eq!(event.cycles, scanned.cycles);
        assert_eq!(event, scanned);
    }
}

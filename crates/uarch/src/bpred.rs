//! Combined (bimodal + gshare with meta chooser) branch predictor, branch
//! target buffer, and return address stack — the "Combined 2K tables"
//! predictor of Table 3.

use crate::config::PredictorConfig;
use smarts_isa::OpClass;

/// A fetch-time branch prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prediction {
    /// Predicted direction (always `true` for unconditional transfers).
    pub taken: bool,
    /// Predicted target instruction index, when the front end can supply
    /// one (BTB hit, RAS entry, or direct target known at decode).
    pub target: Option<u64>,
}

/// One BTB entry, packed per-way so a set lookup walks one contiguous
/// run (same layout treatment as [`crate::Cache`]'s lines).
#[derive(Debug, Clone, Copy, Default)]
struct BtbEntry {
    tag: u64,
    target: u64,
    lru: u64,
    valid: bool,
}

/// Mirror-array value for ways holding no entry (see [`crate::Cache`]'s
/// `INVALID_TAG` for the sentinel-collision argument).
const INVALID_TAG: u64 = u64::MAX;

/// First way whose mirrored tag equals `tag` and whose entry is valid —
/// the BTB twin of the cache/TLB `find_way`: a fixed-width 4-wide compare
/// over the contiguous tag mirror that LLVM autovectorizes, with
/// candidates confirmed in ascending way order so the first-match choice
/// is bit-identical to the scalar scan it replaced (proven against the
/// parallel-Vec reference model in `tests/golden_state.rs`).
#[inline]
fn find_way(tags: &[u64], entries: &[BtbEntry], tag: u64) -> Option<usize> {
    let mut chunks = tags.chunks_exact(4);
    let mut way = 0usize;
    for c in &mut chunks {
        let mut mask = (c[0] == tag) as u8
            | (((c[1] == tag) as u8) << 1)
            | (((c[2] == tag) as u8) << 2)
            | (((c[3] == tag) as u8) << 3);
        while mask != 0 {
            let w = way + mask.trailing_zeros() as usize;
            if entries[w].valid {
                debug_assert_eq!(entries[w].tag, tag);
                return Some(w);
            }
            mask &= mask - 1;
        }
        way += 4;
    }
    for (i, &t) in chunks.remainder().iter().enumerate() {
        if t == tag && entries[way + i].valid {
            return Some(way + i);
        }
    }
    None
}

#[derive(Debug, Clone)]
struct Btb {
    entries: Vec<BtbEntry>,
    // Contiguous tag mirror, same indexing as `entries`; invalid ways
    // hold `INVALID_TAG`. Invariant: `entries[i].valid` implies
    // `tags[i] == entries[i].tag`. Maintained at fill (the BTB never
    // invalidates).
    tags: Vec<u64>,
    // Most-recently-touched way per set: a scan-order hint only.
    mru: Vec<u32>,
    tick: u64,
    sets: u64,
    assoc: usize,
    // Shift/mask fast path when the set count is a power of two (true for
    // the Table 3 predictor); index math matches the divide path exactly.
    set_shift: Option<u32>,
    set_mask: u64,
}

impl Btb {
    fn new(entries: u32, assoc: u32) -> Self {
        assert!(entries > 0 && assoc > 0 && entries.is_multiple_of(assoc));
        let sets = (entries / assoc) as u64;
        let slots = entries as usize;
        Btb {
            entries: vec![BtbEntry::default(); slots],
            tags: vec![INVALID_TAG; slots],
            mru: vec![0; sets as usize],
            tick: 0,
            sets,
            assoc: assoc as usize,
            set_shift: sets.is_power_of_two().then(|| sets.trailing_zeros()),
            set_mask: sets - 1,
        }
    }

    #[inline]
    fn set_and_tag(&self, pc: u64) -> (usize, u64) {
        match self.set_shift {
            Some(shift) => ((pc & self.set_mask) as usize, pc >> shift),
            None => ((pc % self.sets) as usize, pc / self.sets),
        }
    }

    #[inline]
    fn lookup(&mut self, pc: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.assoc;

        let mru = self.mru[set] as usize;
        if let Some(entry) = self.entries[base..base + self.assoc].get_mut(mru) {
            if entry.valid && entry.tag == tag {
                entry.lru = tick;
                return Some(entry.target);
            }
        }
        if let Some(way) = find_way(
            &self.tags[base..base + self.assoc],
            &self.entries[base..base + self.assoc],
            tag,
        ) {
            let entry = &mut self.entries[base + way];
            entry.lru = tick;
            self.mru[set] = way as u32;
            return Some(entry.target);
        }
        None
    }

    #[inline]
    fn update(&mut self, pc: u64, target: u64) {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(pc);
        let base = set * self.assoc;

        let mru = self.mru[set] as usize;
        if let Some(entry) = self.entries[base..base + self.assoc].get_mut(mru) {
            if entry.valid && entry.tag == tag {
                entry.target = target;
                entry.lru = tick;
                return;
            }
        }
        if let Some(way) = find_way(
            &self.tags[base..base + self.assoc],
            &self.entries[base..base + self.assoc],
            tag,
        ) {
            let entry = &mut self.entries[base + way];
            entry.target = target;
            entry.lru = tick;
            self.mru[set] = way as u32;
            return;
        }
        let set_entries = &mut self.entries[base..base + self.assoc];
        let mut victim = 0;
        let mut best = u64::MAX;
        for (way, entry) in set_entries.iter().enumerate() {
            if !entry.valid {
                victim = way;
                break;
            }
            if entry.lru < best {
                best = entry.lru;
                victim = way;
            }
        }
        set_entries[victim] = BtbEntry {
            tag,
            target,
            lru: tick,
            valid: true,
        };
        self.tags[base + victim] = tag;
        self.mru[set] = victim as u32;
    }

    /// Appends the BTB's dynamic state as fixed-width words (geometry is
    /// reconstructed from the config; the tag mirror is rebuilt on load).
    /// The words are *canonical* exactly as for
    /// [`crate::Cache::save_state`]: valid entries per set emitted
    /// most-recent-first with recency-rank `lru`, all-zero words for
    /// empty ways, constant MRU hints and tick — so behaviourally equal
    /// BTBs serialize identically.
    fn save_state(&self, out: &mut Vec<u64>) {
        let mut order: Vec<usize> = Vec::with_capacity(self.assoc);
        for set in 0..self.sets as usize {
            let base = set * self.assoc;
            order.clear();
            order.extend((base..base + self.assoc).filter(|&i| self.entries[i].valid));
            order.sort_by_key(|&i| std::cmp::Reverse(self.entries[i].lru));
            let present = order.len() as u64;
            for (rank, &i) in order.iter().enumerate() {
                let entry = &self.entries[i];
                out.push(entry.tag);
                out.push(entry.target);
                out.push(present - rank as u64);
                out.push(1);
            }
            let absent = self.assoc - order.len();
            out.resize(out.len() + 4 * absent, 0);
        }
        out.resize(out.len() + self.mru.len(), 0);
        out.push(self.assoc as u64);
    }

    /// Restores state written by [`Btb::save_state`]; returns the words
    /// consumed, or `None` if `words` is too short.
    fn load_state(&mut self, words: &[u64]) -> Option<usize> {
        let needed = 4 * self.entries.len() + self.mru.len() + 1;
        let words = words.get(..needed)?;
        let (entry_words, rest) = words.split_at(4 * self.entries.len());
        for (i, chunk) in entry_words.chunks_exact(4).enumerate() {
            let valid = chunk[3] & 1 != 0;
            self.entries[i] = BtbEntry {
                tag: chunk[0],
                target: chunk[1],
                lru: chunk[2],
                valid,
            };
            self.tags[i] = if valid { chunk[0] } else { INVALID_TAG };
        }
        let (mru_words, tail) = rest.split_at(self.mru.len());
        for (m, &w) in self.mru.iter_mut().zip(mru_words) {
            *m = w as u32;
        }
        self.tick = tail[0];
        Some(needed)
    }
}

#[inline]
fn counter_update(counter: &mut u8, taken: bool) {
    if taken {
        if *counter < 3 {
            *counter += 1;
        }
    } else if *counter > 0 {
        *counter -= 1;
    }
}

/// Combined branch predictor with BTB and return address stack.
///
/// Direction prediction follows SimpleScalar's "comb" predictor: a bimodal
/// table and a gshare (global-history XOR) table of 2-bit counters, with a
/// 2-bit meta chooser selecting between them per branch. Targets come from
/// a set-associative BTB; returns pop a circular return-address stack.
///
/// The same predictor instance is updated by functional warming between
/// sampling units and consulted by the detailed front end inside them —
/// this is exactly the state that SMARTS's functional warming keeps hot.
///
/// # Examples
///
/// ```
/// use smarts_uarch::{BranchPredictor, MachineConfig};
/// use smarts_isa::OpClass;
///
/// let mut bp = BranchPredictor::new(MachineConfig::eight_way().bpred);
/// // Train a strongly-taken branch at pc 100 targeting 5.
/// for _ in 0..4 {
///     bp.update(100, OpClass::CondBranch, true, 5);
/// }
/// let p = bp.predict(100, OpClass::CondBranch, None);
/// assert!(p.taken);
/// assert_eq!(p.target, Some(5));
/// ```
#[derive(Debug, Clone)]
pub struct BranchPredictor {
    cfg: PredictorConfig,
    bimodal: Vec<u8>,
    gshare: Vec<u8>,
    meta: Vec<u8>,
    history: u64,
    history_mask: u64,
    btb: Btb,
    ras: Vec<u64>,
    ras_top: usize,
    ras_depth: usize,
    lookups: u64,
    cond_lookups: u64,
    cond_mispredicts: u64,
}

impl BranchPredictor {
    /// Creates a predictor with all counters weakly not-taken and an empty
    /// RAS.
    ///
    /// # Panics
    ///
    /// Panics if any table size is zero, not a power of two (direction
    /// tables), or the BTB geometry does not divide evenly.
    pub fn new(cfg: PredictorConfig) -> Self {
        assert!(cfg.bimodal_entries.is_power_of_two());
        assert!(cfg.gshare_entries.is_power_of_two());
        assert!(cfg.meta_entries.is_power_of_two());
        assert!(cfg.ras_entries > 0);
        BranchPredictor {
            bimodal: vec![1; cfg.bimodal_entries as usize],
            gshare: vec![1; cfg.gshare_entries as usize],
            meta: vec![1; cfg.meta_entries as usize],
            history: 0,
            history_mask: (cfg.gshare_entries as u64) - 1,
            btb: Btb::new(cfg.btb_entries, cfg.btb_assoc),
            ras: vec![0; cfg.ras_entries as usize],
            ras_top: 0,
            ras_depth: 0,
            lookups: 0,
            cond_lookups: 0,
            cond_mispredicts: 0,
            cfg,
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &PredictorConfig {
        &self.cfg
    }

    /// Total prediction lookups.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Conditional-branch direction mispredicts recorded via
    /// [`BranchPredictor::update`].
    pub fn cond_mispredicts(&self) -> u64 {
        self.cond_mispredicts
    }

    /// Conditional-branch direction misprediction ratio.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.cond_lookups == 0 {
            0.0
        } else {
            self.cond_mispredicts as f64 / self.cond_lookups as f64
        }
    }

    /// Approximate bytes of backing store (direction tables, BTB with its
    /// tag mirror, RAS), for checkpoint footprint accounting.
    pub fn approx_bytes(&self) -> usize {
        self.bimodal.len()
            + self.gshare.len()
            + self.meta.len()
            + self.btb.entries.len() * std::mem::size_of::<BtbEntry>()
            + self.btb.tags.len() * std::mem::size_of::<u64>()
            + self.btb.mru.len() * std::mem::size_of::<u32>()
            + self.ras.len() * std::mem::size_of::<u64>()
    }

    /// Appends all predictor state (direction tables, global history,
    /// BTB, RAS, statistics) as fixed-width words for the checkpoint
    /// store. One word per 2-bit counter is wasteful as raw storage, but
    /// the store delta-encodes against the previous unit and run-length
    /// compresses, so unchanged counters cost ~nothing on disk.
    /// The emitted words are *canonical* (see
    /// [`crate::Cache::save_state`]): the direction tables, history, and
    /// BTB content are behaviour-determined already; the RAS is
    /// rewritten as if its observable frames (the values successive pops
    /// would return, oldest first) were pushed into a fresh stack, so
    /// stale slots beyond the live window and the absolute rotation of
    /// the circular buffer — both unobservable — never reach the store;
    /// the statistics counters are written as zeros.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(self.bimodal.iter().map(|&c| c as u64));
        out.extend(self.gshare.iter().map(|&c| c as u64));
        out.extend(self.meta.iter().map(|&c| c as u64));
        out.push(self.history);
        self.btb.save_state(out);
        // Gather the observable frames newest-first, then replay them
        // oldest-first through the push rule into a fresh buffer.
        let len = self.ras.len();
        let mut frames = Vec::with_capacity(self.ras_depth);
        let mut idx = self.ras_top;
        for _ in 0..self.ras_depth {
            frames.push(self.ras[idx]);
            idx = (idx + len - 1) % len;
        }
        let mut canonical = vec![0u64; len];
        let mut top = 0usize;
        for &frame in frames.iter().rev() {
            top = (top + 1) % len;
            canonical[top] = frame;
        }
        out.extend_from_slice(&canonical);
        out.push(top as u64);
        out.push(self.ras_depth as u64);
        out.push(0);
        out.push(0);
        out.push(0);
    }

    /// Restores state written by [`BranchPredictor::save_state`] into a
    /// predictor of the same configuration. Returns the number of words
    /// consumed, or `None` if `words` is too short.
    pub fn load_state(&mut self, words: &[u64]) -> Option<usize> {
        let mut used = 0;
        for table in [&mut self.bimodal, &mut self.gshare, &mut self.meta] {
            let src = words.get(used..used + table.len())?;
            for (counter, &word) in table.iter_mut().zip(src) {
                *counter = word as u8;
            }
            used += table.len();
        }
        self.history = *words.get(used)?;
        used += 1;
        used += self.btb.load_state(words.get(used..)?)?;
        let src = words.get(used..used + self.ras.len())?;
        self.ras.copy_from_slice(src);
        used += self.ras.len();
        let tail = words.get(used..used + 5)?;
        self.ras_top = tail[0] as usize;
        self.ras_depth = tail[1] as usize;
        self.lookups = tail[2];
        self.cond_lookups = tail[3];
        self.cond_mispredicts = tail[4];
        used += 5;
        Some(used)
    }

    #[inline]
    fn bimodal_index(&self, pc: u64) -> usize {
        // Table sizes are asserted powers of two; mask instead of modulo.
        (pc & (self.bimodal.len() as u64 - 1)) as usize
    }

    fn gshare_index(&self, pc: u64) -> usize {
        ((pc ^ self.history) & self.history_mask) as usize
    }

    #[inline]
    fn meta_index(&self, pc: u64) -> usize {
        (pc & (self.meta.len() as u64 - 1)) as usize
    }

    fn direction(&self, pc: u64) -> bool {
        let use_gshare = self.meta[self.meta_index(pc)] >= 2;
        if use_gshare {
            self.gshare[self.gshare_index(pc)] >= 2
        } else {
            self.bimodal[self.bimodal_index(pc)] >= 2
        }
    }

    /// Predicts the outcome of the control instruction at `pc`
    /// (an instruction index).
    ///
    /// `direct_target` supplies the statically-known target of direct
    /// jumps and calls (available at decode in a real front end); indirect
    /// transfers fall back to the BTB, and returns to the RAS. For calls,
    /// `pc + 1` is pushed onto the RAS.
    ///
    /// Non-control classes return a fall-through (not-taken) prediction.
    pub fn predict(&mut self, pc: u64, class: OpClass, direct_target: Option<u64>) -> Prediction {
        self.lookups += 1;
        match class {
            OpClass::CondBranch => {
                self.cond_lookups += 1;
                let taken = self.direction(pc);
                let target = if taken { self.btb.lookup(pc) } else { None };
                Prediction { taken, target }
            }
            OpClass::Jump => {
                let target = direct_target.or_else(|| self.btb.lookup(pc));
                Prediction {
                    taken: true,
                    target,
                }
            }
            OpClass::Call => {
                self.ras_push(pc + 1);
                let target = direct_target.or_else(|| self.btb.lookup(pc));
                Prediction {
                    taken: true,
                    target,
                }
            }
            OpClass::Return => {
                let target = self.ras_pop();
                Prediction {
                    taken: true,
                    target,
                }
            }
            _ => Prediction {
                taken: false,
                target: None,
            },
        }
    }

    /// Trains the predictor with the resolved outcome of the control
    /// instruction at `pc`.
    ///
    /// Functional warming calls this for every control instruction during
    /// fast-forwarding; detailed simulation calls it at commit.
    pub fn update(&mut self, pc: u64, class: OpClass, taken: bool, target: u64) {
        match class {
            OpClass::CondBranch => {
                let bi = self.bimodal_index(pc);
                let gi = self.gshare_index(pc);
                let mi = self.meta_index(pc);
                let bimodal_correct = (self.bimodal[bi] >= 2) == taken;
                let gshare_correct = (self.gshare[gi] >= 2) == taken;
                let predicted = self.direction(pc);
                if predicted != taken {
                    self.cond_mispredicts += 1;
                }
                // Meta chooser trains toward whichever component was right.
                if gshare_correct != bimodal_correct {
                    counter_update(&mut self.meta[mi], gshare_correct);
                }
                counter_update(&mut self.bimodal[bi], taken);
                counter_update(&mut self.gshare[gi], taken);
                self.history = ((self.history << 1) | taken as u64) & self.history_mask;
                if taken {
                    self.btb.update(pc, target);
                }
            }
            OpClass::Jump | OpClass::Call => {
                self.btb.update(pc, target);
            }
            OpClass::Return => {}
            _ => {}
        }
    }

    /// Trains the predictor from an architectural execution record during
    /// functional warming: performs the RAS push/pop side effects of
    /// calls/returns and updates direction/target state.
    pub fn warm(&mut self, pc: u64, class: OpClass, taken: bool, target: u64) {
        match class {
            OpClass::Call => {
                self.ras_push(pc + 1);
                self.btb.update(pc, target);
            }
            OpClass::Return => {
                let _ = self.ras_pop();
            }
            _ => self.update(pc, class, taken, target),
        }
    }

    fn ras_push(&mut self, return_pc: u64) {
        self.ras_top = (self.ras_top + 1) % self.ras.len();
        self.ras[self.ras_top] = return_pc;
        if self.ras_depth < self.ras.len() {
            self.ras_depth += 1;
        }
    }

    fn ras_pop(&mut self) -> Option<u64> {
        if self.ras_depth == 0 {
            return None;
        }
        let value = self.ras[self.ras_top];
        self.ras_top = (self.ras_top + self.ras.len() - 1) % self.ras.len();
        self.ras_depth -= 1;
        Some(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn predictor() -> BranchPredictor {
        BranchPredictor::new(MachineConfig::eight_way().bpred)
    }

    #[test]
    fn cold_predictor_predicts_not_taken() {
        let mut bp = predictor();
        let p = bp.predict(10, OpClass::CondBranch, None);
        assert!(!p.taken);
        assert_eq!(p.target, None);
    }

    #[test]
    fn trains_to_taken_with_btb_target() {
        let mut bp = predictor();
        for _ in 0..4 {
            bp.update(10, OpClass::CondBranch, true, 77);
        }
        let p = bp.predict(10, OpClass::CondBranch, None);
        assert!(p.taken);
        assert_eq!(p.target, Some(77));
    }

    #[test]
    fn trains_back_to_not_taken() {
        let mut bp = predictor();
        for _ in 0..4 {
            bp.update(10, OpClass::CondBranch, true, 77);
        }
        for _ in 0..4 {
            bp.update(10, OpClass::CondBranch, false, 0);
        }
        assert!(!bp.predict(10, OpClass::CondBranch, None).taken);
    }

    #[test]
    fn gshare_learns_alternating_pattern() {
        let mut bp = predictor();
        // Pattern T,N,T,N… is unlearnable by bimodal but trivial for
        // gshare once history differentiates the two contexts.
        let mut correct = 0;
        let mut total = 0;
        let mut taken = true;
        for i in 0..400 {
            let p = bp.predict(42, OpClass::CondBranch, None);
            if i >= 200 {
                total += 1;
                if p.taken == taken {
                    correct += 1;
                }
            }
            bp.update(42, OpClass::CondBranch, taken, 7);
            taken = !taken;
        }
        assert!(correct as f64 / total as f64 > 0.95, "{correct}/{total}");
    }

    #[test]
    fn call_return_pair_uses_ras() {
        let mut bp = predictor();
        // Call at pc 5 → RAS holds 6; return should predict 6.
        let _ = bp.predict(5, OpClass::Call, Some(100));
        let p = bp.predict(200, OpClass::Return, None);
        assert!(p.taken);
        assert_eq!(p.target, Some(6));
        // Empty RAS yields no target.
        let p2 = bp.predict(201, OpClass::Return, None);
        assert_eq!(p2.target, None);
    }

    #[test]
    fn nested_calls_unwind_in_order() {
        let mut bp = predictor();
        let _ = bp.predict(1, OpClass::Call, Some(10));
        let _ = bp.predict(11, OpClass::Call, Some(20));
        assert_eq!(bp.predict(21, OpClass::Return, None).target, Some(12));
        assert_eq!(bp.predict(12, OpClass::Return, None).target, Some(2));
    }

    #[test]
    fn ras_overflows_circularly() {
        let cfg = PredictorConfig {
            ras_entries: 2,
            ..MachineConfig::eight_way().bpred
        };
        let mut bp = BranchPredictor::new(cfg);
        let _ = bp.predict(1, OpClass::Call, None);
        let _ = bp.predict(2, OpClass::Call, None);
        let _ = bp.predict(3, OpClass::Call, None); // overwrites oldest
        assert_eq!(bp.predict(10, OpClass::Return, None).target, Some(4));
        assert_eq!(bp.predict(11, OpClass::Return, None).target, Some(3));
        // The overwritten frame returns a stale value (circular stack).
        assert_eq!(bp.predict(12, OpClass::Return, None).target, None);
    }

    #[test]
    fn direct_jump_uses_decode_target() {
        let mut bp = predictor();
        let p = bp.predict(9, OpClass::Jump, Some(55));
        assert!(p.taken);
        assert_eq!(p.target, Some(55));
    }

    #[test]
    fn indirect_jump_uses_btb() {
        let mut bp = predictor();
        assert_eq!(bp.predict(9, OpClass::Jump, None).target, None);
        bp.update(9, OpClass::Jump, true, 123);
        assert_eq!(bp.predict(9, OpClass::Jump, None).target, Some(123));
    }

    #[test]
    fn warm_matches_update_for_branches() {
        let mut a = predictor();
        let mut b = predictor();
        for i in 0..50 {
            let taken = i % 3 != 0;
            a.update(7, OpClass::CondBranch, taken, 99);
            b.warm(7, OpClass::CondBranch, taken, 99);
        }
        assert_eq!(
            a.predict(7, OpClass::CondBranch, None),
            b.predict(7, OpClass::CondBranch, None)
        );
    }

    #[test]
    fn mispredict_ratio_tracks_training() {
        let mut bp = predictor();
        for _ in 0..100 {
            let _ = bp.predict(3, OpClass::CondBranch, None);
            bp.update(3, OpClass::CondBranch, true, 4);
        }
        // After warm-up nearly everything predicts correctly.
        assert!(bp.mispredict_ratio() < 0.1);
    }
}

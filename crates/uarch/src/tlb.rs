//! Set-associative translation lookaside buffers.

use crate::config::TlbConfig;

/// One TLB entry, packed so a whole set is contiguous (same rationale as
/// the cache's line layout: one set lookup touches one run of memory
/// instead of three parallel arrays).
#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    tag: u64,
    lru: u64,
    valid: bool,
}

/// Mirror-array value for ways holding no translation (see the cache's
/// `INVALID_TAG` for the sentinel-collision argument).
const INVALID_TAG: u64 = u64::MAX;

/// First way whose mirrored tag equals `tag` and whose entry is valid —
/// the TLB twin of the cache's `find_way`: a fixed-width 4-wide compare
/// over the contiguous tag mirror that LLVM autovectorizes, with
/// candidates confirmed in ascending way order so the first-match choice
/// is bit-identical to the scalar scan.
#[inline]
fn find_way(tags: &[u64], entries: &[Entry], tag: u64) -> Option<usize> {
    let mut chunks = tags.chunks_exact(4);
    let mut way = 0usize;
    for c in &mut chunks {
        let mut mask = (c[0] == tag) as u8
            | (((c[1] == tag) as u8) << 1)
            | (((c[2] == tag) as u8) << 2)
            | (((c[3] == tag) as u8) << 3);
        while mask != 0 {
            let w = way + mask.trailing_zeros() as usize;
            if entries[w].valid {
                debug_assert_eq!(entries[w].tag, tag);
                return Some(w);
            }
            mask &= mask - 1;
        }
        way += 4;
    }
    for (i, &t) in chunks.remainder().iter().enumerate() {
        if t == tag && entries[way + i].valid {
            return Some(way + i);
        }
    }
    None
}

/// A set-associative TLB with LRU replacement.
///
/// Models translation presence only; a miss costs
/// [`TlbConfig::miss_penalty`] cycles (charged by the pipeline). The same
/// `access` path serves functional warming and detailed simulation.
/// Replacement behaviour is bit-identical to the historical parallel-Vec
/// layout; the per-set MRU index only reorders the hit scan.
///
/// # Examples
///
/// ```
/// use smarts_uarch::{Tlb, TlbConfig};
///
/// let cfg = TlbConfig { entries: 8, assoc: 2, page_bytes: 4096, miss_penalty: 200 };
/// let mut tlb = Tlb::new(cfg);
/// assert!(!tlb.access(0x1234)); // cold miss
/// assert!(tlb.access(0x1FFF)); // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    // entries[set * assoc + way].
    entries: Vec<Entry>,
    // Contiguous tag mirror, same indexing; invalid ways hold
    // `INVALID_TAG`. Invariant: `entries[i].valid` implies
    // `tags[i] == entries[i].tag`.
    tags: Vec<u64>,
    // Most-recently-hit way per set: a scan-order hint only.
    mru: Vec<u32>,
    tick: u64,
    sets: u64,
    assoc: usize,
    // Shift/mask fast path when the geometry is power-of-two (always for
    // the Table 3 machines).
    page_shift: Option<u32>,
    set_shift: u32,
    set_mask: u64,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a cold TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `assoc`, or either is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.assoc > 0 && cfg.entries.is_multiple_of(cfg.assoc));
        assert!(cfg.page_bytes.is_power_of_two());
        let sets = (cfg.entries / cfg.assoc) as u64;
        let slots = cfg.entries as usize;
        let page_shift = sets
            .is_power_of_two()
            .then(|| cfg.page_bytes.trailing_zeros());
        Tlb {
            cfg,
            entries: vec![Entry::default(); slots],
            tags: vec![INVALID_TAG; slots],
            mru: vec![0; sets as usize],
            tick: 0,
            sets,
            assoc: cfg.assoc as usize,
            page_shift,
            set_shift: sets.trailing_zeros(),
            set_mask: sets - 1,
            accesses: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (u64, u64) {
        if let Some(shift) = self.page_shift {
            let vpn = addr >> shift;
            (vpn & self.set_mask, vpn >> self.set_shift)
        } else {
            let vpn = addr / self.cfg.page_bytes;
            (vpn % self.sets, vpn / self.sets)
        }
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up the page containing `addr`, filling the entry on a miss.
    /// Returns `true` on a hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let base = set as usize * self.assoc;

        // MRU fast path: repeated accesses to the same page hit in one
        // compare (the overwhelmingly common case for 4 KiB pages).
        let mru = self.mru[set as usize] as usize;
        if let Some(entry) = self.entries[base..base + self.assoc].get_mut(mru) {
            if entry.valid && entry.tag == tag {
                entry.lru = tick;
                return true;
            }
        }

        if let Some(way) = find_way(
            &self.tags[base..base + self.assoc],
            &self.entries[base..base + self.assoc],
            tag,
        ) {
            self.entries[base + way].lru = tick;
            self.mru[set as usize] = way as u32;
            return true;
        }

        self.misses += 1;
        let set_entries = &mut self.entries[base..base + self.assoc];
        let mut victim = 0;
        let mut best = u64::MAX;
        for (way, entry) in set_entries.iter().enumerate() {
            if !entry.valid {
                victim = way;
                break;
            }
            if entry.lru < best {
                best = entry.lru;
                victim = way;
            }
        }
        set_entries[victim] = Entry {
            tag,
            lru: tick,
            valid: true,
        };
        self.tags[base + victim] = tag;
        self.mru[set as usize] = victim as u32;
        false
    }

    /// Pre-touches the set run for `addr` (read-only; see
    /// [`crate::Cache::prefetch_set`] for the bit-identity argument).
    #[inline]
    pub fn prefetch_set(&self, addr: u64) {
        let (set, _) = self.set_and_tag(addr);
        let base = set as usize * self.assoc;
        // Stride-2 touch: one read per 64-B host line of the packed run.
        let mut touched = 0u64;
        let mut way = 0;
        while way < self.assoc {
            touched ^= self.entries[base + way].lru;
            way += 2;
        }
        // Lookup reads the tag mirror first; start that fill as well.
        way = 0;
        while way < self.assoc {
            touched ^= self.tags[base + way];
            way += 8;
        }
        std::hint::black_box(touched);
    }

    /// Approximate bytes of backing store, for checkpoint footprint
    /// accounting.
    pub fn approx_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Entry>()
            + self.tags.len() * std::mem::size_of::<u64>()
            + self.mru.len() * std::mem::size_of::<u32>()
    }

    /// Appends replacement state, recency hints, and statistics as
    /// fixed-width words for the checkpoint store (geometry is not
    /// written). The words are *canonical* exactly as for
    /// [`crate::Cache::save_state`]: valid entries per set emitted
    /// most-recent-first with recency-rank `lru`, all-zero words for
    /// empty ways, constant MRU hints / tick / statistics — so
    /// behaviourally equal TLBs serialize identically.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        let mut order: Vec<usize> = Vec::with_capacity(self.assoc);
        for set in 0..self.sets as usize {
            let base = set * self.assoc;
            order.clear();
            order.extend((base..base + self.assoc).filter(|&i| self.entries[i].valid));
            order.sort_by_key(|&i| std::cmp::Reverse(self.entries[i].lru));
            let present = order.len() as u64;
            for (rank, &i) in order.iter().enumerate() {
                out.push(self.entries[i].tag);
                out.push(present - rank as u64);
                out.push(1);
            }
            let absent = self.assoc - order.len();
            out.resize(out.len() + 3 * absent, 0);
        }
        out.resize(out.len() + self.mru.len(), 0);
        out.push(self.assoc as u64);
        out.push(0);
        out.push(0);
    }

    /// Restores state written by [`Tlb::save_state`] into a TLB of the
    /// same geometry, rebuilding the tag mirror. Returns the number of
    /// words consumed, or `None` if `words` is too short.
    pub fn load_state(&mut self, words: &[u64]) -> Option<usize> {
        let needed = 3 * self.entries.len() + self.mru.len() + 3;
        let words = words.get(..needed)?;
        let (entry_words, rest) = words.split_at(3 * self.entries.len());
        for (i, chunk) in entry_words.chunks_exact(3).enumerate() {
            let valid = chunk[2] & 1 != 0;
            self.entries[i] = Entry {
                tag: chunk[0],
                lru: chunk[1],
                valid,
            };
            self.tags[i] = if valid { chunk[0] } else { INVALID_TAG };
        }
        let (mru_words, tail) = rest.split_at(self.mru.len());
        for (m, &w) in self.mru.iter_mut().zip(mru_words) {
            *m = w as u32;
        }
        self.tick = tail[0];
        self.accesses = tail[1];
        self.misses = tail[2];
        Some(needed)
    }

    /// Whether the page containing `addr` is mapped, without perturbing
    /// state.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = set as usize * self.assoc;
        find_way(
            &self.tags[base..base + self.assoc],
            &self.entries[base..base + self.assoc],
            tag,
        )
        .is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            assoc: 2,
            page_bytes: 4096,
            miss_penalty: 200,
        })
    }

    #[test]
    fn page_granularity() {
        let mut tlb = small();
        assert!(!tlb.access(0));
        assert!(tlb.access(4095));
        assert!(!tlb.access(4096));
        assert_eq!(tlb.misses(), 2);
    }

    #[test]
    fn lru_within_set() {
        let mut tlb = small(); // 2 sets × 2 ways
                               // Pages 0, 2, 4 map to set 0.
        let page = |n: u64| n * 4096;
        tlb.access(page(0));
        tlb.access(page(2));
        tlb.access(page(0)); // page 0 most recent
        tlb.access(page(4)); // evicts page 2
        assert!(tlb.probe(page(0)));
        assert!(!tlb.probe(page(2)));
        assert!(tlb.probe(page(4)));
    }

    #[test]
    fn probe_is_pure() {
        let mut tlb = small();
        tlb.access(0);
        let acc = tlb.accesses();
        assert!(tlb.probe(100));
        assert_eq!(tlb.accesses(), acc);
    }

    #[test]
    fn mru_fast_path_keeps_lru_order() {
        let mut tlb = small();
        let page = |n: u64| n * 4096;
        tlb.access(page(0));
        tlb.access(page(2)); // MRU now way 1
        tlb.access(page(0)); // scan-path hit, MRU back to way 0
        tlb.access(page(0)); // MRU fast-path hit
        tlb.access(page(2)); // scan-path hit: page 2 most recent
        tlb.access(page(4)); // must evict page 0
        assert!(!tlb.probe(page(0)));
        assert!(tlb.probe(page(2)));
        assert!(tlb.probe(page(4)));
    }

    #[test]
    fn four_way_vector_lookup_preserves_hit_and_victim_order() {
        // 4-way × 2 sets: lookups take the full-chunk compare path.
        let mut tlb = Tlb::new(TlbConfig {
            entries: 8,
            assoc: 4,
            page_bytes: 4096,
            miss_penalty: 200,
        });
        let page = |n: u64| n * 2 * 4096; // successive pages of set 0
        for n in 0..4 {
            assert!(!tlb.access(page(n)));
        }
        for n in 0..4 {
            assert!(tlb.access(page(n)), "way {n} should hit");
        }
        assert!(!tlb.access(page(4))); // evicts page 0 (LRU)
        assert!(!tlb.probe(page(0)));
        for n in 1..5 {
            assert!(tlb.probe(page(n)), "page {n} should be mapped");
        }
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 3,
            assoc: 2,
            page_bytes: 4096,
            miss_penalty: 1,
        });
    }
}

//! Set-associative translation lookaside buffers.

use crate::config::TlbConfig;

/// A set-associative TLB with LRU replacement.
///
/// Models translation presence only; a miss costs
/// [`TlbConfig::miss_penalty`] cycles (charged by the pipeline). The same
/// `access` path serves functional warming and detailed simulation.
///
/// # Examples
///
/// ```
/// use smarts_uarch::{Tlb, TlbConfig};
///
/// let cfg = TlbConfig { entries: 8, assoc: 2, page_bytes: 4096, miss_penalty: 200 };
/// let mut tlb = Tlb::new(cfg);
/// assert!(!tlb.access(0x1234)); // cold miss
/// assert!(tlb.access(0x1FFF)); // same page
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    cfg: TlbConfig,
    tags: Vec<u64>,
    valid: Vec<bool>,
    lru: Vec<u64>,
    tick: u64,
    sets: u64,
    // Shift/mask fast path when the geometry is power-of-two (always for
    // the Table 3 machines).
    page_shift: Option<u32>,
    set_shift: u32,
    set_mask: u64,
    accesses: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a cold TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a multiple of `assoc`, or either is zero.
    pub fn new(cfg: TlbConfig) -> Self {
        assert!(cfg.entries > 0 && cfg.assoc > 0 && cfg.entries.is_multiple_of(cfg.assoc));
        assert!(cfg.page_bytes.is_power_of_two());
        let sets = (cfg.entries / cfg.assoc) as u64;
        let slots = cfg.entries as usize;
        let page_shift = sets
            .is_power_of_two()
            .then(|| cfg.page_bytes.trailing_zeros());
        Tlb {
            cfg,
            tags: vec![0; slots],
            valid: vec![false; slots],
            lru: vec![0; slots],
            tick: 0,
            sets,
            page_shift,
            set_shift: sets.trailing_zeros(),
            set_mask: sets - 1,
            accesses: 0,
            misses: 0,
        }
    }

    #[inline]
    fn set_and_tag(&self, addr: u64) -> (u64, u64) {
        if let Some(shift) = self.page_shift {
            let vpn = addr >> shift;
            (vpn & self.set_mask, vpn >> self.set_shift)
        } else {
            let vpn = addr / self.cfg.page_bytes;
            (vpn % self.sets, vpn / self.sets)
        }
    }

    /// The TLB's configuration.
    pub fn config(&self) -> &TlbConfig {
        &self.cfg
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Looks up the page containing `addr`, filling the entry on a miss.
    /// Returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        self.tick += 1;
        let (set, tag) = self.set_and_tag(addr);
        let base = (set * self.cfg.assoc as u64) as usize;
        let ways = self.cfg.assoc as usize;
        for way in base..base + ways {
            if self.valid[way] && self.tags[way] == tag {
                self.lru[way] = self.tick;
                return true;
            }
        }
        self.misses += 1;
        let mut victim = base;
        let mut best = u64::MAX;
        for way in base..base + ways {
            if !self.valid[way] {
                victim = way;
                break;
            }
            if self.lru[way] < best {
                best = self.lru[way];
                victim = way;
            }
        }
        self.valid[victim] = true;
        self.tags[victim] = tag;
        self.lru[victim] = self.tick;
        false
    }

    /// Whether the page containing `addr` is mapped, without perturbing
    /// state.
    pub fn probe(&self, addr: u64) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        let base = (set * self.cfg.assoc as u64) as usize;
        (base..base + self.cfg.assoc as usize).any(|way| self.valid[way] && self.tags[way] == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 4,
            assoc: 2,
            page_bytes: 4096,
            miss_penalty: 200,
        })
    }

    #[test]
    fn page_granularity() {
        let mut tlb = small();
        assert!(!tlb.access(0));
        assert!(tlb.access(4095));
        assert!(!tlb.access(4096));
        assert_eq!(tlb.misses(), 2);
    }

    #[test]
    fn lru_within_set() {
        let mut tlb = small(); // 2 sets × 2 ways
                               // Pages 0, 2, 4 map to set 0.
        let page = |n: u64| n * 4096;
        tlb.access(page(0));
        tlb.access(page(2));
        tlb.access(page(0)); // page 0 most recent
        tlb.access(page(4)); // evicts page 2
        assert!(tlb.probe(page(0)));
        assert!(!tlb.probe(page(2)));
        assert!(tlb.probe(page(4)));
    }

    #[test]
    fn probe_is_pure() {
        let mut tlb = small();
        tlb.access(0);
        let acc = tlb.accesses();
        assert!(tlb.probe(100));
        assert_eq!(tlb.accesses(), acc);
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        let _ = Tlb::new(TlbConfig {
            entries: 3,
            assoc: 2,
            page_bytes: 4096,
            miss_penalty: 1,
        });
    }
}

//! Out-of-order superscalar timing model with warmable long-history
//! microarchitectural state — the detailed-simulation substrate of the
//! SMARTS reproduction (the analogue of SimpleScalar's `sim-outorder`
//! with the paper's memory-system enhancements).
//!
//! # Architecture
//!
//! * [`MachineConfig`] — Table 3 machine descriptions
//!   ([`MachineConfig::eight_way`], [`MachineConfig::sixteen_way`]).
//! * [`WarmState`] — the long-history state SMARTS keeps warm between
//!   sampling units: [`CacheHierarchy`], two [`Tlb`]s, and a
//!   [`BranchPredictor`]. Functional warming applies
//!   [`WarmState::warm_record`] per fast-forwarded instruction.
//! * [`Pipeline`] — the cycle-accurate out-of-order engine. It replays a
//!   correct-path trace (any [`TraceSource`]) and reports
//!   [`UnitMeasurement`]s (cycles, instructions, activity counters).
//!
//! # Examples
//!
//! Measure the CPI of a small loop on the 8-way machine:
//!
//! ```
//! use smarts_isa::{reg, Asm, Cpu, Memory};
//! use smarts_uarch::{MachineConfig, Pipeline, WarmState};
//!
//! # fn main() -> Result<(), smarts_isa::IsaError> {
//! let mut a = Asm::new();
//! a.li(reg::T0, 0);
//! a.li(reg::T1, 100);
//! let top = a.label();
//! a.bind(top)?;
//! a.addi(reg::T0, reg::T0, 1);
//! a.blt(reg::T0, reg::T1, top);
//! a.halt();
//! let program = a.finish()?;
//!
//! let cfg = MachineConfig::eight_way();
//! let mut warm = WarmState::new(&cfg);
//! let mut pipeline = Pipeline::new(&cfg);
//! let mut cpu = Cpu::new();
//! let mut mem = Memory::new();
//! let mut source = move || {
//!     if cpu.halted() { None } else { cpu.step(&program, &mut mem).ok() }
//! };
//! let m = pipeline.run(&mut warm, &mut source, u64::MAX, true);
//! assert_eq!(m.instructions, 203);
//! assert!(m.cpi() > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bpred;
mod cache;
mod config;
mod hierarchy;
mod pipeline;
mod scan;
mod tlb;
mod warm;

pub use bpred::{BranchPredictor, Prediction};
pub use cache::{Cache, CacheOutcome};
pub use config::{CacheConfig, MachineConfig, OpLatencies, PredictorConfig, TlbConfig};
pub use hierarchy::{AccessResult, CacheHierarchy};
pub use pipeline::{Pipeline, TraceSource, UnitMeasurement};
pub use scan::ScanPipeline;
pub use tlb::Tlb;
pub use warm::WarmState;

//! The warmable long-history microarchitectural state, and functional
//! warming of it.

use crate::bpred::BranchPredictor;
use crate::config::MachineConfig;
use crate::hierarchy::CacheHierarchy;
use crate::tlb::Tlb;
use smarts_isa::ExecRecord;

/// The long-history microarchitectural state SMARTS keeps warm between
/// sampling units: cache hierarchy, TLBs, and branch predictor.
///
/// During *functional warming* (Section 3.1), [`WarmState::warm_record`]
/// is applied to every instruction of the fast-forwarded stream, exactly
/// as SMARTSim maintains "the state of L1/L2 I/D caches, TLBs, and branch
/// predictors in a fashion similar to `sim-cache` and `sim-bpred`".
/// During detailed simulation the same structures are accessed (and thus
/// updated) by the pipeline, so there is a single source of truth for the
/// warmable state.
///
/// # Examples
///
/// ```
/// use smarts_uarch::{MachineConfig, WarmState};
///
/// let cfg = MachineConfig::eight_way();
/// let warm = WarmState::new(&cfg);
/// assert_eq!(warm.hierarchy.l1d().accesses(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct WarmState {
    /// L1 I/D + unified L2 caches.
    pub hierarchy: CacheHierarchy,
    /// Instruction TLB.
    pub itlb: Tlb,
    /// Data TLB.
    pub dtlb: Tlb,
    /// Combined branch predictor, BTB, and RAS.
    pub bpred: BranchPredictor,
    last_fetch_line: u64,
    line_bytes: u64,
    batch_pretouch: bool,
    // Shift fast path when the I-line size is a power of two (always for
    // the Table 3 machines): the per-instruction line computation in the
    // warming hot loop becomes one shift instead of a 64-bit divide.
    line_shift: Option<u32>,
}

impl WarmState {
    /// Creates cold (empty) warmable state for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        WarmState {
            hierarchy: CacheHierarchy::new(cfg),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            bpred: BranchPredictor::new(cfg.bpred),
            last_fetch_line: u64::MAX,
            line_bytes: cfg.l1i.line_bytes,
            batch_pretouch: false,
            line_shift: cfg
                .l1i
                .line_bytes
                .is_power_of_two()
                .then(|| cfg.l1i.line_bytes.trailing_zeros()),
        }
    }

    /// Applies functional warming for one architecturally-executed
    /// instruction: touches the I-side for its fetch, the D-side for its
    /// data access (if any), and trains the branch predictor for control
    /// instructions.
    #[inline]
    pub fn warm_record(&mut self, rec: &ExecRecord) {
        // Instruction side: one cache/TLB access per fetched line, as an
        // in-order front end would generate.
        let fetch_addr = rec.fetch_addr();
        let line = match self.line_shift {
            Some(shift) => fetch_addr >> shift,
            None => fetch_addr / self.line_bytes,
        };
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            self.itlb.access(fetch_addr);
            let _ = self.hierarchy.access_instr(fetch_addr);
        }

        // Data side.
        if let Some(mem) = rec.mem {
            self.dtlb.access(mem.addr);
            let _ = self.hierarchy.access_data(mem.addr, mem.is_store);
        }

        // Control side.
        let class = rec.class();
        if class.is_control() {
            self.bpred.warm(rec.pc, class, rec.taken, rec.next_pc);
        }
    }

    /// Applies functional warming for a batch of architecturally-executed
    /// instructions, in stream order.
    ///
    /// Before the in-order scan, each data access's unified-L2 set run —
    /// the one warmed structure large enough to miss host caches — is
    /// pre-touched read-only, so the dependent-load pattern of (e.g.)
    /// pointer chasing can overlap host-cache fills across the batch
    /// instead of serializing one set fetch per record. The pre-touch
    /// pass never writes, and the apply pass is exactly
    /// [`WarmState::warm_record`] per record in order, so the warmed
    /// state is bit-identical to per-record warming (golden-state tests
    /// replay both paths). On hosts without the memory-level parallelism
    /// to exploit the overlap, skip it via
    /// [`WarmState::set_batch_pretouch`].
    pub fn warm_batch(&mut self, records: &[ExecRecord]) {
        if self.batch_pretouch {
            for rec in records {
                if let Some(mem) = rec.mem {
                    self.hierarchy.l2_prefetch_set(mem.addr);
                }
            }
        }
        for rec in records {
            self.warm_record(rec);
        }
    }

    /// Enables or disables the read-only L2 pre-touch pass in
    /// [`WarmState::warm_batch`]. Pre-touching only pays off when the
    /// host can overlap multiple outstanding cache fills; on a
    /// single-hart host the extra scan is pure overhead, so it defaults
    /// to off. Purely a host-performance knob: warmed state is
    /// bit-identical either way.
    pub fn set_batch_pretouch(&mut self, enabled: bool) {
        self.batch_pretouch = enabled;
    }

    /// Approximate bytes of warmable state (caches, TLBs, predictor),
    /// for checkpoint footprint accounting.
    pub fn approx_bytes(&self) -> usize {
        self.hierarchy.approx_bytes()
            + self.itlb.approx_bytes()
            + self.dtlb.approx_bytes()
            + self.bpred.approx_bytes()
    }

    /// Appends all warmable state as fixed-width words for the checkpoint
    /// store: hierarchy, both TLBs, the branch predictor, and the
    /// last-fetched-line filter (part of the warming stream's dynamic
    /// state — dropping it would double-count an I-access on resume).
    /// Host-performance knobs and config-derived fields are not written:
    /// the loader builds a fresh [`WarmState::new`] from the same config,
    /// which restores them exactly. The word count is a pure function of
    /// the machine geometry.
    pub fn save_state(&self, out: &mut Vec<u64>) {
        self.hierarchy.save_state(out);
        self.itlb.save_state(out);
        self.dtlb.save_state(out);
        self.bpred.save_state(out);
        out.push(self.last_fetch_line);
    }

    /// Restores state written by [`WarmState::save_state`] into warm
    /// state of the same machine geometry. Returns the number of words
    /// consumed, or `None` if `words` is too short.
    pub fn load_state(&mut self, words: &[u64]) -> Option<usize> {
        let mut used = self.hierarchy.load_state(words)?;
        used += self.itlb.load_state(words.get(used..)?)?;
        used += self.dtlb.load_state(words.get(used..)?)?;
        used += self.bpred.load_state(words.get(used..)?)?;
        self.last_fetch_line = *words.get(used)?;
        used += 1;
        Some(used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_isa::{Inst, MemAccess, OpClass, Opcode, Program};

    fn record(
        pc: u64,
        inst: Inst,
        mem: Option<MemAccess>,
        taken: bool,
        next_pc: u64,
    ) -> ExecRecord {
        ExecRecord {
            pc,
            inst,
            mem,
            taken,
            next_pc,
        }
    }

    #[test]
    fn warming_touches_icache_per_line() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        // 16 sequential instructions share a 64-byte line (4 B each).
        for pc in 0..16 {
            warm.warm_record(&record(pc, Inst::nop(), None, false, pc + 1));
        }
        assert_eq!(warm.hierarchy.l1i().accesses(), 1);
        // Crossing the line boundary produces a second access.
        warm.warm_record(&record(16, Inst::nop(), None, false, 17));
        assert_eq!(warm.hierarchy.l1i().accesses(), 2);
    }

    #[test]
    fn warming_touches_dcache_and_dtlb() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let ld = Inst::new(Opcode::Ld, 4, 5, 0, 0);
        let access = MemAccess {
            addr: 0x9000,
            size: 8,
            is_store: false,
        };
        warm.warm_record(&record(0, ld, Some(access), false, 1));
        assert_eq!(warm.hierarchy.l1d().accesses(), 1);
        assert_eq!(warm.dtlb.accesses(), 1);
        assert!(warm.hierarchy.l1d_resident(0x9000));
    }

    #[test]
    fn warming_trains_branch_predictor() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let br = Inst::new(Opcode::Bne, 0, 4, 5, 40);
        for _ in 0..8 {
            warm.warm_record(&record(7, br, None, true, 40));
        }
        let p = warm.bpred.predict(7, OpClass::CondBranch, None);
        assert!(p.taken);
        assert_eq!(p.target, Some(40));
    }

    #[test]
    fn warming_is_idempotent_per_line_within_a_basic_block() {
        // Consecutive same-line fetches produce one access (the in-order
        // front-end model), so warming cost is per-line, not per-instr.
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        for pc in 0..160u64 {
            warm.warm_record(&record(pc, Inst::nop(), None, false, pc + 1));
        }
        // 160 × 4 B = 640 B = 10 lines.
        assert_eq!(warm.hierarchy.l1i().accesses(), 10);
    }

    #[test]
    fn warming_marks_store_lines_dirty_for_later_writeback() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let st = Inst::new(Opcode::Sd, 0, 5, 6, 0);
        let access = MemAccess {
            addr: 0xA000,
            size: 8,
            is_store: true,
        };
        warm.warm_record(&record(0, st, Some(access), false, 1));
        // Evict the dirty line through its set; the eviction reports
        // write-back traffic, proving warming carried the dirty bit.
        let out1 = warm.hierarchy.access_data(0xA000 + 0x4000, false);
        let out2 = warm.hierarchy.access_data(0xA000 + 0x8000, false);
        assert!(
            out1.l2_accesses + out2.l2_accesses >= 3,
            "a write-back occurred"
        );
    }

    #[test]
    fn warm_batch_matches_per_record_warming() {
        let cfg = MachineConfig::eight_way();
        let mut batched = WarmState::new(&cfg);
        // Exercise the pre-touch pass too (off by default); it must not
        // perturb warmed state.
        batched.set_batch_pretouch(true);
        let mut direct = WarmState::new(&cfg);
        // A mixed stream: loads/stores striding through conflicting sets,
        // plus branches, so every warmed structure sees traffic.
        let records: Vec<ExecRecord> = (0..256u64)
            .map(|i| {
                let mem = (i % 3 != 2).then(|| MemAccess {
                    addr: (i * 0x1040) % 0x2_0000,
                    size: 8,
                    is_store: i % 5 == 0,
                });
                let inst = match &mem {
                    Some(m) if m.is_store => Inst::new(Opcode::Sd, 0, 5, 6, 0),
                    Some(_) => Inst::new(Opcode::Ld, 4, 5, 0, 0),
                    None => Inst::new(Opcode::Bne, 0, 4, 5, 40),
                };
                let taken = mem.is_none() && i % 2 == 0;
                record(i * 7, inst, mem, taken, if taken { 40 } else { i * 7 + 1 })
            })
            .collect();
        for chunk in records.chunks(64) {
            batched.warm_batch(chunk);
        }
        for rec in &records {
            direct.warm_record(rec);
        }
        assert_eq!(
            batched.hierarchy.l1d().misses(),
            direct.hierarchy.l1d().misses()
        );
        assert_eq!(
            batched.hierarchy.l2().misses(),
            direct.hierarchy.l2().misses()
        );
        assert_eq!(batched.dtlb.misses(), direct.dtlb.misses());
        assert_eq!(
            batched.bpred.cond_mispredicts(),
            direct.bpred.cond_mispredicts()
        );
        // Identical residency, not just identical counts.
        for i in 0..256u64 {
            let addr = (i * 0x1040) % 0x2_0000;
            assert_eq!(
                batched.hierarchy.l1d_resident(addr),
                direct.hierarchy.l1d_resident(addr)
            );
            assert_eq!(batched.dtlb.probe(addr), direct.dtlb.probe(addr));
        }
    }

    #[test]
    fn warm_state_approx_bytes_is_plausible() {
        let cfg = MachineConfig::eight_way();
        let warm = WarmState::new(&cfg);
        let bytes = warm.approx_bytes();
        // The Table 3 machine warms a few hundred KiB of structures.
        assert!(bytes > 100 * 1024, "approx_bytes = {bytes}");
        assert!(bytes < 10 * 1024 * 1024, "approx_bytes = {bytes}");
    }

    #[test]
    fn warm_state_reflects_fetch_addressing() {
        // The warmed I-line corresponds to the TEXT_BASE-relative address.
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        warm.warm_record(&record(0, Inst::nop(), None, false, 1));
        assert!(warm.hierarchy.l1i().probe(Program::fetch_addr(0)));
    }
}

//! The warmable long-history microarchitectural state, and functional
//! warming of it.

use crate::bpred::BranchPredictor;
use crate::config::MachineConfig;
use crate::hierarchy::CacheHierarchy;
use crate::tlb::Tlb;
use smarts_isa::ExecRecord;

/// The long-history microarchitectural state SMARTS keeps warm between
/// sampling units: cache hierarchy, TLBs, and branch predictor.
///
/// During *functional warming* (Section 3.1), [`WarmState::warm_record`]
/// is applied to every instruction of the fast-forwarded stream, exactly
/// as SMARTSim maintains "the state of L1/L2 I/D caches, TLBs, and branch
/// predictors in a fashion similar to `sim-cache` and `sim-bpred`".
/// During detailed simulation the same structures are accessed (and thus
/// updated) by the pipeline, so there is a single source of truth for the
/// warmable state.
///
/// # Examples
///
/// ```
/// use smarts_uarch::{MachineConfig, WarmState};
///
/// let cfg = MachineConfig::eight_way();
/// let warm = WarmState::new(&cfg);
/// assert_eq!(warm.hierarchy.l1d().accesses(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct WarmState {
    /// L1 I/D + unified L2 caches.
    pub hierarchy: CacheHierarchy,
    /// Instruction TLB.
    pub itlb: Tlb,
    /// Data TLB.
    pub dtlb: Tlb,
    /// Combined branch predictor, BTB, and RAS.
    pub bpred: BranchPredictor,
    last_fetch_line: u64,
    line_bytes: u64,
    // Shift fast path when the I-line size is a power of two (always for
    // the Table 3 machines): the per-instruction line computation in the
    // warming hot loop becomes one shift instead of a 64-bit divide.
    line_shift: Option<u32>,
}

impl WarmState {
    /// Creates cold (empty) warmable state for a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        WarmState {
            hierarchy: CacheHierarchy::new(cfg),
            itlb: Tlb::new(cfg.itlb),
            dtlb: Tlb::new(cfg.dtlb),
            bpred: BranchPredictor::new(cfg.bpred),
            last_fetch_line: u64::MAX,
            line_bytes: cfg.l1i.line_bytes,
            line_shift: cfg
                .l1i
                .line_bytes
                .is_power_of_two()
                .then(|| cfg.l1i.line_bytes.trailing_zeros()),
        }
    }

    /// Applies functional warming for one architecturally-executed
    /// instruction: touches the I-side for its fetch, the D-side for its
    /// data access (if any), and trains the branch predictor for control
    /// instructions.
    #[inline]
    pub fn warm_record(&mut self, rec: &ExecRecord) {
        // Instruction side: one cache/TLB access per fetched line, as an
        // in-order front end would generate.
        let fetch_addr = rec.fetch_addr();
        let line = match self.line_shift {
            Some(shift) => fetch_addr >> shift,
            None => fetch_addr / self.line_bytes,
        };
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            self.itlb.access(fetch_addr);
            let _ = self.hierarchy.access_instr(fetch_addr);
        }

        // Data side.
        if let Some(mem) = rec.mem {
            self.dtlb.access(mem.addr);
            let _ = self.hierarchy.access_data(mem.addr, mem.is_store);
        }

        // Control side.
        let class = rec.class();
        if class.is_control() {
            self.bpred.warm(rec.pc, class, rec.taken, rec.next_pc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smarts_isa::{Inst, MemAccess, OpClass, Opcode, Program};

    fn record(
        pc: u64,
        inst: Inst,
        mem: Option<MemAccess>,
        taken: bool,
        next_pc: u64,
    ) -> ExecRecord {
        ExecRecord {
            pc,
            inst,
            mem,
            taken,
            next_pc,
        }
    }

    #[test]
    fn warming_touches_icache_per_line() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        // 16 sequential instructions share a 64-byte line (4 B each).
        for pc in 0..16 {
            warm.warm_record(&record(pc, Inst::nop(), None, false, pc + 1));
        }
        assert_eq!(warm.hierarchy.l1i().accesses(), 1);
        // Crossing the line boundary produces a second access.
        warm.warm_record(&record(16, Inst::nop(), None, false, 17));
        assert_eq!(warm.hierarchy.l1i().accesses(), 2);
    }

    #[test]
    fn warming_touches_dcache_and_dtlb() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let ld = Inst::new(Opcode::Ld, 4, 5, 0, 0);
        let access = MemAccess {
            addr: 0x9000,
            size: 8,
            is_store: false,
        };
        warm.warm_record(&record(0, ld, Some(access), false, 1));
        assert_eq!(warm.hierarchy.l1d().accesses(), 1);
        assert_eq!(warm.dtlb.accesses(), 1);
        assert!(warm.hierarchy.l1d_resident(0x9000));
    }

    #[test]
    fn warming_trains_branch_predictor() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let br = Inst::new(Opcode::Bne, 0, 4, 5, 40);
        for _ in 0..8 {
            warm.warm_record(&record(7, br, None, true, 40));
        }
        let p = warm.bpred.predict(7, OpClass::CondBranch, None);
        assert!(p.taken);
        assert_eq!(p.target, Some(40));
    }

    #[test]
    fn warming_is_idempotent_per_line_within_a_basic_block() {
        // Consecutive same-line fetches produce one access (the in-order
        // front-end model), so warming cost is per-line, not per-instr.
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        for pc in 0..160u64 {
            warm.warm_record(&record(pc, Inst::nop(), None, false, pc + 1));
        }
        // 160 × 4 B = 640 B = 10 lines.
        assert_eq!(warm.hierarchy.l1i().accesses(), 10);
    }

    #[test]
    fn warming_marks_store_lines_dirty_for_later_writeback() {
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        let st = Inst::new(Opcode::Sd, 0, 5, 6, 0);
        let access = MemAccess {
            addr: 0xA000,
            size: 8,
            is_store: true,
        };
        warm.warm_record(&record(0, st, Some(access), false, 1));
        // Evict the dirty line through its set; the eviction reports
        // write-back traffic, proving warming carried the dirty bit.
        let out1 = warm.hierarchy.access_data(0xA000 + 0x4000, false);
        let out2 = warm.hierarchy.access_data(0xA000 + 0x8000, false);
        assert!(
            out1.l2_accesses + out2.l2_accesses >= 3,
            "a write-back occurred"
        );
    }

    #[test]
    fn warm_state_reflects_fetch_addressing() {
        // The warmed I-line corresponds to the TEXT_BASE-relative address.
        let cfg = MachineConfig::eight_way();
        let mut warm = WarmState::new(&cfg);
        warm.warm_record(&record(0, Inst::nop(), None, false, 1));
        assert!(warm.hierarchy.l1i().probe(Program::fetch_addr(0)));
    }
}

//! Two-level cache hierarchy: split L1 I/D over a unified L2.

use crate::cache::Cache;
use crate::config::MachineConfig;

/// Result of a hierarchy access: total latency and which levels were
/// touched (for energy accounting and MSHR management in the pipeline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Total access latency in cycles, including the memory round trip on
    /// a full miss.
    pub latency: u64,
    /// Whether the L1 lookup hit.
    pub l1_hit: bool,
    /// L2 lookups performed (demand fill plus any write-back traffic).
    pub l2_accesses: u64,
    /// Main-memory accesses performed (demand fill plus any write-back).
    pub mem_accesses: u64,
}

/// Split L1 instruction/data caches over a unified, write-back L2.
///
/// This is the "large microarchitectural state" that SMARTS keeps warm
/// with functional warming: the same instance (and therefore the same
/// replacement state) is updated by the in-order warming stream between
/// sampling units and by detailed simulation inside them.
///
/// # Examples
///
/// ```
/// use smarts_uarch::{CacheHierarchy, MachineConfig};
///
/// let cfg = MachineConfig::eight_way();
/// let mut hier = CacheHierarchy::new(&cfg);
/// let cold = hier.access_data(0x8000, false);
/// assert_eq!(cold.latency, 1 + 12 + 100); // L1 + L2 + memory
/// let warm = hier.access_data(0x8000, false);
/// assert_eq!(warm.latency, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    mem_latency: u64,
}

impl CacheHierarchy {
    /// Builds a cold hierarchy from a machine configuration.
    pub fn new(cfg: &MachineConfig) -> Self {
        CacheHierarchy {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            mem_latency: cfg.mem_latency,
        }
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified L2 cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Whether the line containing `addr` is resident in the L1 data
    /// cache (used by the pipeline to decide whether an MSHR is needed
    /// before committing to an access).
    pub fn l1d_resident(&self, addr: u64) -> bool {
        self.l1d.probe(addr)
    }

    fn access(
        cache: &mut Cache,
        l2: &mut Cache,
        mem_latency: u64,
        addr: u64,
        is_write: bool,
    ) -> AccessResult {
        let l1 = cache.access(addr, is_write);
        if l1.hit {
            return AccessResult {
                latency: cache.config().latency,
                l1_hit: true,
                l2_accesses: 0,
                mem_accesses: 0,
            };
        }
        let mut l2_accesses = 1;
        let mut mem_accesses = 0;
        // Demand fill from L2 (the fill itself is a read of L2).
        let l2_out = l2.access(addr, false);
        let mut latency = cache.config().latency + l2.config().latency;
        if !l2_out.hit {
            mem_accesses += 1;
            latency += mem_latency;
            if l2_out.writeback {
                // L2 victim written back to memory, off the critical path.
                mem_accesses += 1;
            }
        }
        if l1.writeback {
            // Dirty L1 victim written back into L2: counted as traffic for
            // energy/bandwidth purposes, off the critical path. (The victim
            // line is almost always still resident in the far larger L2, so
            // its replacement state is not modelled for write-backs.)
            l2_accesses += 1;
        }
        AccessResult {
            latency,
            l1_hit: false,
            l2_accesses,
            mem_accesses,
        }
    }

    /// Pre-touches the L1D and L2 set runs a data access to `addr` would
    /// scan (read-only; see [`Cache::prefetch_set`]).
    #[inline]
    pub fn prefetch_data_sets(&self, addr: u64) {
        self.l1d.prefetch_set(addr);
        self.l2.prefetch_set(addr);
    }

    /// Pre-touches only the unified L2's set run for `addr` (read-only) —
    /// the one warmed structure large enough to miss host caches.
    #[inline]
    pub fn l2_prefetch_set(&self, addr: u64) {
        self.l2.prefetch_set(addr);
    }

    /// Approximate bytes of backing store across all three caches.
    pub fn approx_bytes(&self) -> usize {
        self.l1i.approx_bytes() + self.l1d.approx_bytes() + self.l2.approx_bytes()
    }

    /// Appends all three caches' dynamic state as fixed-width words for
    /// the checkpoint store (L1I, L1D, L2 in that order).
    pub fn save_state(&self, out: &mut Vec<u64>) {
        self.l1i.save_state(out);
        self.l1d.save_state(out);
        self.l2.save_state(out);
    }

    /// Restores state written by [`CacheHierarchy::save_state`] into a
    /// hierarchy of the same geometry. Returns the words consumed, or
    /// `None` if `words` is too short.
    pub fn load_state(&mut self, words: &[u64]) -> Option<usize> {
        let mut used = 0;
        for cache in [&mut self.l1i, &mut self.l1d, &mut self.l2] {
            used += cache.load_state(words.get(used..)?)?;
        }
        Some(used)
    }

    /// Instruction fetch of the line containing `addr`.
    pub fn access_instr(&mut self, addr: u64) -> AccessResult {
        Self::access(&mut self.l1i, &mut self.l2, self.mem_latency, addr, false)
    }

    /// Data access of the line containing `addr`.
    pub fn access_data(&mut self, addr: u64, is_store: bool) -> AccessResult {
        Self::access(
            &mut self.l1d,
            &mut self.l2,
            self.mem_latency,
            addr,
            is_store,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_composition() {
        let cfg = MachineConfig::eight_way();
        let mut h = CacheHierarchy::new(&cfg);
        let full_miss = h.access_data(0x4000, false);
        assert_eq!(full_miss.latency, 113);
        assert!(!full_miss.l1_hit);
        assert_eq!(full_miss.mem_accesses, 1);

        let hit = h.access_data(0x4000, false);
        assert_eq!(hit.latency, 1);
        assert!(hit.l1_hit);

        // Evict from L1 (2-way, 256 sets → same set every 16 KiB) but the
        // line stays in the much larger L2: L2-hit latency.
        let mut h2 = CacheHierarchy::new(&cfg);
        h2.access_data(0x0000, false);
        h2.access_data(0x4000, false);
        h2.access_data(0x8000, false); // evicts 0x0000 from L1
        let l2_hit = h2.access_data(0x0000, false);
        assert_eq!(l2_hit.latency, 13);
    }

    #[test]
    fn instruction_and_data_sides_are_split() {
        let cfg = MachineConfig::eight_way();
        let mut h = CacheHierarchy::new(&cfg);
        h.access_instr(0x100);
        // The data side is still cold for the same address, but L2 is
        // unified so the second access is an L2 hit.
        let d = h.access_data(0x100, false);
        assert!(!d.l1_hit);
        assert_eq!(d.latency, 13);
    }

    #[test]
    fn writeback_traffic_counted_on_dirty_eviction() {
        let cfg = MachineConfig::eight_way();
        let mut h = CacheHierarchy::new(&cfg);
        // Dirty a line, then evict it by filling its L1 set (2-way,
        // 256 sets → same set every 16 KiB).
        h.access_data(0x0000, true);
        h.access_data(0x4000, false);
        let out = h.access_data(0x8000, false); // evicts the dirty line
        assert!(!out.l1_hit);
        assert!(
            out.l2_accesses >= 2,
            "demand fill + write-back, got {}",
            out.l2_accesses
        );
    }

    #[test]
    fn sixteen_way_hierarchy_uses_its_own_latencies() {
        let cfg = MachineConfig::sixteen_way();
        let mut h = CacheHierarchy::new(&cfg);
        let miss = h.access_data(0x7000, false);
        assert_eq!(miss.latency, 2 + 16 + 100);
        let hit = h.access_data(0x7000, false);
        assert_eq!(hit.latency, 2);
    }

    #[test]
    fn l2_keeps_lines_the_l1_evicted() {
        let cfg = MachineConfig::eight_way();
        let mut h = CacheHierarchy::new(&cfg);
        // Fill one L1 set three times over: first line leaves L1.
        for i in 0..3u64 {
            h.access_data(i * 0x4000, false);
        }
        assert!(!h.l1d_resident(0x0000));
        // But it is still an L2 hit (1M, 4-way: no L2 conflict here).
        let back = h.access_data(0x0000, false);
        assert_eq!(back.latency, 1 + 12);
        assert_eq!(back.mem_accesses, 0);
    }

    #[test]
    fn l1d_resident_probe() {
        let cfg = MachineConfig::eight_way();
        let mut h = CacheHierarchy::new(&cfg);
        assert!(!h.l1d_resident(0x40));
        h.access_data(0x40, false);
        assert!(h.l1d_resident(0x40));
        assert!(!h.l1d_resident(0x4000));
    }
}

//! `smarts` — command-line interface to the sampling simulator.
//!
//! ```text
//! smarts list                                 # show the benchmark suite
//! smarts sample  --bench chase-1 [options]    # SMARTS sampling estimate
//! smarts reference --bench chase-1 [options]  # full-detail ground truth
//! smarts compare --bench chase-1 [options]    # paired 8-way vs 16-way
//! smarts simpoint --bench chase-1 [options]   # SimPoint baseline estimate
//! ```
//!
//! Run `smarts help` for the full option list.

use smarts_cli::{dispatch, usage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(()) => {}
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}

//! Implementation of the `smarts` command-line interface.
//!
//! Kept as a library so the argument parser and command handlers are
//! unit-testable; the `smarts` binary is a thin wrapper around
//! [`dispatch`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use smarts_ckpt::MappedStore;
use smarts_core::{
    compare_machines, FunctionalEngine, SampleReport, SamplerKind, SamplerSpec, SamplingParams,
    SmartsSim, Warming,
};
use smarts_exec::{
    compare_machines_parallel, replay_store, replay_store_isa, replay_store_sampled,
    replay_store_sampled_isa, sample_pipeline_saving, sample_pipeline_saving_isa,
    sample_two_step_parallel, warm_store_saving, warm_store_saving_isa, Executor, ParallelMode,
    ParallelReport, SampledReplay,
};
use smarts_isa::{write_trace, IsaId, RiscIsa, TraceIsa};
use smarts_server::{
    canonical_report_line, report_from_json, sampled_report_line, Client, JobSpec, Server,
    ServerConfig,
};
use smarts_simpoint::{estimate_cpi, SimPointConfig};
use smarts_stats::Confidence;
use smarts_uarch::MachineConfig;
use smarts_uarch::WarmState;
use smarts_workloads::{extended_suite, find, Benchmark, Frontend};

/// Parsed common options shared by the sampling subcommands.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Benchmark name (required by most subcommands).
    pub bench: Option<String>,
    /// Machine selection: 8 or 16.
    pub config: u32,
    /// Benchmark length multiplier.
    pub scale: f64,
    /// Target sample size.
    pub n: u64,
    /// Sampling unit size U.
    pub unit: u64,
    /// Detailed warming W (`None` = the machine's recommendation).
    pub warming_len: Option<u64>,
    /// Disable functional warming.
    pub no_functional_warming: bool,
    /// Phase offset j.
    pub offset: u64,
    /// Relative error target for the two-step procedure.
    pub epsilon: Option<f64>,
    /// Confidence level (fraction).
    pub confidence: f64,
    /// Worker threads for `sample` and `compare` (1 = sequential).
    pub jobs: usize,
    /// Parallel decomposition when `jobs > 1`.
    pub parallel_mode: ParallelMode,
    /// Warming shards (1 = serial warming). More than one implies
    /// sharded-warm mode unless the mode was set to sharded (leapfrog).
    pub warm_jobs: usize,
    /// Bounded channel depth (checkpoints) for pipeline mode.
    pub pipeline_depth: usize,
    /// Persist unit checkpoints to this store while sampling.
    pub save_checkpoints: Option<String>,
    /// Replay a persisted checkpoint store instead of warming.
    pub from_checkpoints: Option<String>,
    /// Emit the canonical bit-exact report JSON instead of prose.
    pub json: bool,
    /// Server address for the client subcommands.
    pub addr: String,
    /// Job id for `status`/`result`/`cancel`.
    pub job: Option<String>,
    /// Block `submit` until the job finishes and print its report.
    pub wait: bool,
    /// Listen address for `serve`.
    pub listen: String,
    /// Store directory for `serve`.
    pub store_dir: String,
    /// Scheduler worker threads for `serve`.
    pub server_workers: usize,
    /// Mapped stores the server keeps open across jobs (LRU beyond this).
    pub max_open_stores: usize,
    /// Write the bound port here after `serve` binds.
    pub port_file: Option<String>,
    /// Unit-selection strategy for `sample`/`submit`.
    pub sampler: SamplerKind,
    /// Seed for the sampler's randomized phases.
    pub seed: u64,
    /// Stratum count for the stratified/adaptive strategies.
    pub strata: u32,
    /// Pilot size in units (0 = automatic).
    pub pilot: u64,
    /// Instruction-set frontend for `sample`/`submit`.
    pub isa: IsaId,
    /// Trace file to sample (`--trace`; selects the trace frontend).
    pub trace: Option<String>,
    /// Output path for `trace-export`.
    pub out: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            bench: None,
            config: 8,
            scale: 1.0,
            n: 100,
            unit: 1000,
            warming_len: None,
            no_functional_warming: false,
            offset: 0,
            epsilon: None,
            confidence: 0.9973,
            jobs: 1,
            parallel_mode: ParallelMode::Checkpoint,
            warm_jobs: 1,
            pipeline_depth: smarts_exec::DEFAULT_PIPELINE_DEPTH,
            save_checkpoints: None,
            from_checkpoints: None,
            json: false,
            addr: "127.0.0.1:4617".to_string(),
            job: None,
            wait: false,
            listen: "127.0.0.1:4617".to_string(),
            store_dir: "smarts-store".to_string(),
            server_workers: 2,
            max_open_stores: smarts_server::DEFAULT_MAX_OPEN_STORES,
            port_file: None,
            sampler: SamplerKind::Systematic,
            seed: 0,
            strata: 4,
            pilot: 0,
            isa: IsaId::Builtin,
            trace: None,
            out: None,
        }
    }
}

/// Usage text for `smarts help` and error paths.
pub fn usage() -> String {
    "usage: smarts <command> [options]\n\
     \n\
     commands:\n\
     \x20 list                     show the benchmark suite\n\
     \x20 sample                   SMARTS sampling estimate (CPI/EPI/MPKI + confidence)\n\
     \x20 reference                full-detail ground truth (slow)\n\
     \x20 compare                  paired 8-way vs 16-way comparison\n\
     \x20 simpoint                 SimPoint baseline estimate\n\
     \x20 cachesim                 functional cache/TLB simulation (sim-cache analogue)\n\
     \x20 bpredsim                 functional branch-predictor simulation (sim-bpred analogue)\n\
     \x20 serve                    run the sampling-as-a-service job server\n\
     \x20 submit                   submit a sampling job to a running server\n\
     \x20 status                   list server jobs (or one with --job)\n\
     \x20 result                   fetch a finished job's report (--job)\n\
     \x20 cancel                   cancel a queued or running job (--job)\n\
     \x20 shutdown                 ask the server to drain and exit\n\
     \x20 ckpt-info <store>        inspect a checkpoint store (no replay);\n\
     \x20                          reports its frontend; --json emits a\n\
     \x20                          machine-readable inventory with per-record\n\
     \x20                          offsets and sizes\n\
     \x20 trace-export             record a benchmark's committed-instruction\n\
     \x20                          stream to a CRC-checked trace file (--bench,\n\
     \x20                          --out; sample it back with --trace)\n\
     \x20 help                     this message\n\
     \n\
     options:\n\
     \x20 --bench <name>           benchmark (see `smarts list`)\n\
     \x20 --isa <builtin|risc>     instruction-set frontend   [builtin]\n\
     \x20 --trace <file>           sample a recorded trace file (trace frontend;\n\
     \x20                          replaces --bench, ignores --scale)\n\
     \x20 --out <file>             trace-export: output trace path\n\
     \x20 --config <8|16>          machine configuration      [8]\n\
     \x20 --scale <f>              stream length multiplier   [1.0]\n\
     \x20 --n <count>              target sample size         [100]\n\
     \x20 --u <insts>              sampling unit size U       [1000]\n\
     \x20 --w <insts>              detailed warming W         [machine default]\n\
     \x20 --no-functional-warming  fast-forward without warming\n\
     \x20 --offset <units>         systematic phase offset j  [0]\n\
     \x20 --epsilon <f>            two-step target (e.g. 0.03); for stratified/\n\
     \x20                          adaptive samplers, the CI half-width target\n\
     \x20 --confidence <f>         confidence level           [0.9973]\n\
     \x20 --sampler <kind>         unit selection: systematic (default; bit-exact\n\
     \x20                          fixed grid), stratified (pilot + Neyman\n\
     \x20                          allocation), or adaptive (sequential stopping\n\
     \x20                          at the CI target)\n\
     \x20 --seed <u64>             sampler seed (stratified/adaptive)  [0]\n\
     \x20 --strata <count>         stratum count                       [4]\n\
     \x20 --pilot <units>          pilot sample size (0 = automatic)   [0]\n\
     \x20 --jobs <count>           worker threads for sample/compare [1]\n\
     \x20 --parallel-mode <mode>   checkpoint (bit-identical replay),\n\
     \x20                          pipeline (bit-identical, warming overlaps replay,\n\
     \x20                          bounded memory), sharded (leapfrog, small\n\
     \x20                          residual bias), or sharded-warm (bit-identical,\n\
     \x20                          warming itself split across --warm-jobs shards)\n\
     \x20                          [checkpoint]\n\
     \x20 --pipeline-depth <n>     pipeline-mode channel depth, in checkpoints [4]\n\
     \x20 --warm-jobs <count>      warming shards; > 1 implies sharded-warm mode\n\
     \x20                          (ignored by sharded leapfrog mode)  [1]\n\
     \x20 --save-checkpoints <p>   persist unit checkpoints to a store at <p> while\n\
     \x20                          sampling (implies pipeline mode; not with --epsilon)\n\
     \x20 --from-checkpoints <p>   replay a saved store, skipping functional warming;\n\
     \x20                          benchmark and sampling design come from the store\n\
     \x20                          (--bench is ignored; not with --epsilon)\n\
     \x20 --json                   emit the canonical bit-exact report JSON (sample,\n\
     \x20                          submit --wait, result)\n\
     \n\
     server options:\n\
     \x20 --addr <host:port>       server to contact           [127.0.0.1:4617]\n\
     \x20 --job <id>               job id for status/result/cancel\n\
     \x20 --wait                   submit: block until done and print the report\n\
     \x20 --listen <host:port>     serve: listen address       [127.0.0.1:4617]\n\
     \x20 --store-dir <dir>        serve: checkpoint-store directory [smarts-store]\n\
     \x20 --server-workers <n>     serve: concurrent jobs      [2]\n\
     \x20 --max-open-stores <n>    serve: mapped stores kept open (LRU) [8]\n\
     \x20 --port-file <path>       serve: write the bound port here"
        .to_string()
}

/// Parses the option list shared by the subcommands.
///
/// # Errors
///
/// Returns a human-readable message for unknown flags or malformed
/// values.
pub fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--bench" => options.bench = Some(value("--bench")?),
            "--isa" => {
                let name = value("--isa")?;
                options.isa = IsaId::from_name(&name)
                    .ok_or_else(|| format!("--isa takes builtin, risc, or trace (not {name})"))?;
            }
            "--trace" => options.trace = Some(value("--trace")?),
            "--out" => options.out = Some(value("--out")?),
            "--config" => {
                options.config = value("--config")?
                    .parse()
                    .map_err(|_| "--config takes 8 or 16".to_string())?;
                if options.config != 8 && options.config != 16 {
                    return Err("--config takes 8 or 16".into());
                }
            }
            "--scale" => {
                options.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "--scale takes a positive number".to_string())?;
                if options.scale <= 0.0 {
                    return Err("--scale takes a positive number".into());
                }
            }
            "--n" => {
                options.n = value("--n")?
                    .parse()
                    .map_err(|_| "--n takes a count".to_string())?;
            }
            "--u" => {
                options.unit = value("--u")?
                    .parse()
                    .map_err(|_| "--u takes a count".to_string())?;
            }
            "--w" => {
                options.warming_len = Some(
                    value("--w")?
                        .parse()
                        .map_err(|_| "--w takes a count".to_string())?,
                );
            }
            "--no-functional-warming" => options.no_functional_warming = true,
            "--offset" => {
                options.offset = value("--offset")?
                    .parse()
                    .map_err(|_| "--offset takes a count".to_string())?;
            }
            "--epsilon" => {
                options.epsilon = Some(
                    value("--epsilon")?
                        .parse()
                        .map_err(|_| "--epsilon takes a fraction".to_string())?,
                );
            }
            "--confidence" => {
                options.confidence = value("--confidence")?
                    .parse()
                    .map_err(|_| "--confidence takes a fraction".to_string())?;
            }
            "--sampler" => {
                options.sampler = value("--sampler")?.parse()?;
            }
            "--seed" => {
                options.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed takes a u64".to_string())?;
            }
            "--strata" => {
                options.strata = value("--strata")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--strata takes a stratum count of at least 1".to_string())?;
            }
            "--pilot" => {
                options.pilot = value("--pilot")?
                    .parse()
                    .map_err(|_| "--pilot takes a unit count".to_string())?;
            }
            "--jobs" => {
                options.jobs = value("--jobs")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--jobs takes a worker count of at least 1".to_string())?;
            }
            "--parallel-mode" => {
                options.parallel_mode = value("--parallel-mode")?.parse().map_err(|_| {
                    "--parallel-mode takes checkpoint, pipeline, sharded, or sharded-warm"
                        .to_string()
                })?;
            }
            "--warm-jobs" => {
                options.warm_jobs = value("--warm-jobs")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--warm-jobs takes a shard count of at least 1".to_string())?;
            }
            "--pipeline-depth" => {
                options.pipeline_depth = value("--pipeline-depth")?
                    .parse()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--pipeline-depth takes a depth of at least 1".to_string())?;
            }
            "--save-checkpoints" => {
                options.save_checkpoints = Some(value("--save-checkpoints")?);
            }
            "--from-checkpoints" => {
                options.from_checkpoints = Some(value("--from-checkpoints")?);
            }
            "--json" => options.json = true,
            "--addr" => options.addr = value("--addr")?,
            "--job" => options.job = Some(value("--job")?),
            "--wait" => options.wait = true,
            "--listen" => options.listen = value("--listen")?,
            "--store-dir" => options.store_dir = value("--store-dir")?,
            "--server-workers" => {
                options.server_workers = value("--server-workers")?
                    .parse()
                    .ok()
                    .filter(|&n| (1..=256).contains(&n))
                    .ok_or_else(|| "--server-workers takes a count in 1..=256".to_string())?;
            }
            "--max-open-stores" => {
                options.max_open_stores = value("--max-open-stores")?
                    .parse()
                    .ok()
                    .filter(|&n| (1..=1024).contains(&n))
                    .ok_or_else(|| "--max-open-stores takes a count in 1..=1024".to_string())?;
            }
            "--port-file" => options.port_file = Some(value("--port-file")?),
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(options)
}

fn machine(options: &Options) -> MachineConfig {
    if options.config == 16 {
        MachineConfig::sixteen_way()
    } else {
        MachineConfig::eight_way()
    }
}

fn benchmark(options: &Options) -> Result<Benchmark, String> {
    let name = options.bench.as_deref().ok_or("--bench is required")?;
    let bench =
        find(name).ok_or_else(|| format!("unknown benchmark `{name}` (see `smarts list`)"))?;
    Ok(bench.scaled(options.scale))
}

fn sampling_params(
    options: &Options,
    cfg: &MachineConfig,
    bench: &Benchmark,
) -> Result<SamplingParams, String> {
    let warming = if options.no_functional_warming {
        Warming::None
    } else {
        Warming::Functional
    };
    let w = options
        .warming_len
        .unwrap_or_else(|| cfg.recommended_detailed_warming());
    SamplingParams::for_sample_size(
        bench.approx_len(),
        options.unit,
        w,
        warming,
        options.n,
        options.offset,
    )
    .map_err(|e| e.to_string())
}

/// The sampler spec the options describe. `--epsilon` doubles as the
/// CI half-width target for the non-systematic strategies (defaulting
/// to the paper's ±3%), and `--confidence` carries over unchanged.
fn sampler_spec(options: &Options) -> SamplerSpec {
    SamplerSpec {
        kind: options.sampler,
        seed: options.seed,
        strata: options.strata,
        pilot: options.pilot,
        epsilon: options.epsilon.unwrap_or(0.03),
        confidence: options.confidence,
    }
}

fn cmd_list() {
    println!("{:<12} {:>14}  kernel family", "name", "approx length");
    for bench in extended_suite() {
        let family = bench.name().split('-').next().unwrap_or("?");
        println!(
            "{:<12} {:>13.1}M  {}",
            bench.name(),
            bench.approx_len() as f64 / 1e6,
            family
        );
    }
}

/// The parallel mode the options actually ask for: `--warm-jobs` above
/// one upgrades the bit-identical modes (checkpoint, pipeline) to
/// sharded-warm, while an explicit leapfrog request stays leapfrog.
fn effective_mode(options: &Options) -> ParallelMode {
    if options.warm_jobs > 1
        && matches!(
            options.parallel_mode,
            ParallelMode::Checkpoint | ParallelMode::Pipeline
        )
    {
        ParallelMode::ShardedWarm
    } else {
        options.parallel_mode
    }
}

fn executor_for(options: &Options) -> Result<Executor, String> {
    Ok(Executor::new(options.jobs)
        .map_err(|e| e.to_string())?
        .with_mode(effective_mode(options))
        .with_pipeline_depth(options.pipeline_depth)
        .with_warm_jobs(options.warm_jobs))
}

/// The frontend the sampling options select, plus the workload name it
/// resolves (a benchmark name for risc, a trace path for trace; unused
/// when replaying a store, whose header names its own workload).
fn sample_frontend(options: &Options) -> Result<(IsaId, String), String> {
    if let Some(trace) = &options.trace {
        if options.isa == IsaId::Risc {
            return Err("--trace selects the trace frontend; drop --isa risc".into());
        }
        return Ok((IsaId::Trace, trace.clone()));
    }
    match options.isa {
        IsaId::Builtin => Ok((IsaId::Builtin, String::new())),
        IsaId::Risc => Ok((IsaId::Risc, options.bench.clone().unwrap_or_default())),
        IsaId::Trace => {
            if options.from_checkpoints.is_some() {
                Ok((IsaId::Trace, String::new()))
            } else {
                Err(
                    "--isa trace needs --trace <file> (or --from-checkpoints on a trace store)"
                        .into(),
                )
            }
        }
    }
}

fn cmd_sample(options: &Options) -> Result<(), String> {
    match sample_frontend(options)? {
        (IsaId::Builtin, _) => {}
        (IsaId::Risc, workload) => return cmd_sample_isa::<RiscIsa>(options, &workload),
        (IsaId::Trace, workload) => return cmd_sample_isa::<TraceIsa>(options, &workload),
    }
    if options.sampler != SamplerKind::Systematic {
        return cmd_sample_sampled(options);
    }
    if options.epsilon.is_some()
        && (options.save_checkpoints.is_some() || options.from_checkpoints.is_some())
    {
        return Err(
            "--epsilon tunes the sampling design between runs and cannot be combined \
             with --save-checkpoints/--from-checkpoints (a store fixes the design)"
                .into(),
        );
    }
    if options.save_checkpoints.is_some() && options.from_checkpoints.is_some() {
        return Err("--save-checkpoints and --from-checkpoints are mutually exclusive".into());
    }
    if let Some(path) = &options.from_checkpoints {
        return cmd_sample_from_store(options, path);
    }

    let cfg = machine(options);
    let bench = benchmark(options)?;
    let sim = SmartsSim::new(cfg.clone());
    let params = sampling_params(options, &cfg, &bench)?;
    let conf = Confidence::new(options.confidence).map_err(|e| e.to_string())?;

    let announce_tuned = |outcome: &smarts_core::TwoStepOutcome, eps: f64| {
        if let Some(tuned) = &outcome.tuned {
            println!(
                "initial n = {} missed ±{:.2}%; tuned rerun at n = {}",
                outcome.initial.sample_size(),
                eps * 100.0,
                tuned.sample_size()
            );
        }
    };
    let mut parallel: Option<ParallelReport> = None;
    // Pipeline mode runs through the executor even at one worker: the
    // producer/consumer overlap is the point, not the worker count.
    // Saving checkpoints is pipeline-shaped by construction.
    let use_executor = options.jobs > 1
        || matches!(
            effective_mode(options),
            ParallelMode::Pipeline | ParallelMode::ShardedWarm
        )
        || options.save_checkpoints.is_some();
    let report = if let Some(path) = &options.save_checkpoints {
        let executor = executor_for(options)?;
        let saved = sample_pipeline_saving(&executor, &sim, &bench, options.scale, &params, path)
            .map_err(|e| e.to_string())?;
        println!(
            "store         {} records, {:.2} MiB written to {path}",
            saved.write.records,
            saved.write.bytes as f64 / (1024.0 * 1024.0)
        );
        let report = saved.report.report.clone();
        parallel = Some(saved.report);
        report
    } else if use_executor {
        let executor = executor_for(options)?;
        match options.epsilon {
            None => {
                let outcome = executor
                    .sample(&sim, &bench, &params)
                    .map_err(|e| e.to_string())?;
                let report = outcome.report.clone();
                parallel = Some(outcome);
                report
            }
            Some(eps) => {
                let outcome = sample_two_step_parallel(&executor, &sim, &bench, &params, eps, conf)
                    .map_err(|e| e.to_string())?;
                announce_tuned(&outcome, eps);
                outcome.best().clone()
            }
        }
    } else {
        match options.epsilon {
            None => sim.sample(&bench, &params).map_err(|e| e.to_string())?,
            Some(eps) => {
                let outcome = sim
                    .sample_two_step(&bench, &params, eps, conf)
                    .map_err(|e| e.to_string())?;
                announce_tuned(&outcome, eps);
                outcome.best().clone()
            }
        }
    };

    if options.json {
        println!("{}", canonical_report_line(&report));
        return Ok(());
    }
    print_sample_report(
        &bench.to_string(),
        &cfg,
        &params,
        &report,
        conf,
        parallel.as_ref(),
    );
    Ok(())
}

/// Runs a non-systematic (stratified/adaptive) sampling estimate.
///
/// Both strategies select a *subset* of the systematic checkpoint grid,
/// so they always work against a store: `--from-checkpoints` replays an
/// existing one, `--save-checkpoints` warms one and keeps it, and the
/// bare cold path warms into a temporary store that is deleted after
/// the replay. All three produce identical canonical lines for the
/// same spec because the store bytes are identical by construction.
fn cmd_sample_sampled(options: &Options) -> Result<(), String> {
    if options.save_checkpoints.is_some() && options.from_checkpoints.is_some() {
        return Err("--save-checkpoints and --from-checkpoints are mutually exclusive".into());
    }
    let cfg = machine(options);
    let sim = SmartsSim::new(cfg.clone());
    let spec = sampler_spec(options);
    spec.validate().map_err(|e| e.to_string())?;
    let executor = executor_for(options)?;

    let sampled: SampledReplay = if let Some(path) = &options.from_checkpoints {
        let store = MappedStore::open(path, &cfg).map_err(|e| e.to_string())?;
        replay_store_sampled(&executor, &sim, &store, &spec).map_err(|e| e.to_string())?
    } else {
        let bench = benchmark(options)?;
        let params = sampling_params(options, &cfg, &bench)?;
        let (store_path, temporary) = match &options.save_checkpoints {
            Some(p) => (std::path::PathBuf::from(p), false),
            None => {
                static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let name = format!(
                    "smarts-sampled-{}-{}-{seq}.ck",
                    std::process::id(),
                    bench.name()
                );
                (std::env::temp_dir().join(name), true)
            }
        };
        let write = warm_store_saving(&executor, &sim, &bench, options.scale, &params, &store_path)
            .map_err(|e| e.to_string())?;
        let replayed = {
            let store = MappedStore::open(&store_path, &cfg).map_err(|e| e.to_string())?;
            replay_store_sampled(&executor, &sim, &store, &spec).map_err(|e| e.to_string())
        };
        if temporary {
            let _ = std::fs::remove_file(&store_path);
        } else if !options.json {
            println!(
                "store         {} records, {:.2} MiB written to {}",
                write.records,
                write.bytes as f64 / (1024.0 * 1024.0),
                store_path.display()
            );
        }
        replayed?
    };

    if options.json {
        println!("{}", sampled_report_line(&sampled));
        return Ok(());
    }
    let conf = Confidence::new(options.confidence).map_err(|e| e.to_string())?;
    let meta = &sampled.meta;
    let label = match find(&meta.benchmark) {
        Some(b) => b.scaled(meta.scale).to_string(),
        None => meta.benchmark.clone(),
    };
    print_sampled_report(&spec, &sampled, &cfg, conf, &label);
    Ok(())
}

/// Prose output shared by the sampled (stratified/adaptive) paths of
/// every frontend: selection accounting, the sampler's own estimate, and
/// the merged report.
fn print_sampled_report(
    spec: &SamplerSpec,
    sampled: &SampledReplay,
    cfg: &MachineConfig,
    conf: Confidence,
    label: &str,
) {
    let est = &sampled.estimate;
    println!("sampler       {spec}");
    println!(
        "selection     {} of {} units over {} rounds ({} strata); stopped: {}",
        est.n,
        est.pool,
        est.rounds,
        est.strata,
        est.stop.tag()
    );
    println!(
        "stratified    CPI {:.4} ±{:.2}% (target ±{:.2}% {})",
        est.mean,
        if est.mean.abs() > f64::EPSILON {
            est.half_width / est.mean * 100.0
        } else {
            0.0
        },
        spec.epsilon * 100.0,
        if est.target_met { "met" } else { "missed" }
    );
    print_sample_report(
        label,
        cfg,
        &sampled.meta.params,
        &sampled.report.report,
        conf,
        Some(&sampled.report),
    );
}

/// Replays a persisted checkpoint store: the store's own benchmark and
/// sampling design apply, and functional warming is skipped entirely.
fn cmd_sample_from_store(options: &Options, path: &str) -> Result<(), String> {
    let cfg = machine(options);
    let sim = SmartsSim::new(cfg.clone());
    let conf = Confidence::new(options.confidence).map_err(|e| e.to_string())?;
    let executor = executor_for(options)?;
    let replayed = replay_store(&executor, &sim, path).map_err(|e| e.to_string())?;
    if options.json {
        println!("{}", canonical_report_line(&replayed.report.report));
        return Ok(());
    }
    let meta = &replayed.meta;
    let label = match find(&meta.benchmark) {
        Some(b) => b.scaled(meta.scale).to_string(),
        None => meta.benchmark.clone(),
    };
    println!(
        "store         {path}: {} records (bench {}, scale {})",
        replayed.records, meta.benchmark, meta.scale
    );
    if let Some(damage) = &replayed.damage {
        println!(
            "WARNING       store damaged past record {}: {damage}; \
             the intact prefix above was still replayed",
            replayed.records
        );
    }
    print_sample_report(
        &label,
        &cfg,
        &meta.params,
        &replayed.report.report,
        conf,
        Some(&replayed.report),
    );
    Ok(())
}

fn sampling_params_isa<F: Frontend>(
    options: &Options,
    cfg: &MachineConfig,
    workload: &str,
) -> Result<SamplingParams, String> {
    let warming = if options.no_functional_warming {
        Warming::None
    } else {
        Warming::Functional
    };
    let w = options
        .warming_len
        .unwrap_or_else(|| cfg.recommended_detailed_warming());
    let approx = F::approx_len(workload, options.scale)?;
    SamplingParams::for_sample_size(approx, options.unit, w, warming, options.n, options.offset)
        .map_err(|e| e.to_string())
}

/// A unique temp-store path for frontends that always sample through a
/// store.
fn temp_store_path(tag: &str) -> std::path::PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("smarts-{tag}-{}-{seq}.ck", std::process::id()))
}

/// `smarts sample` for a non-built-in frontend. These frontends always
/// sample through a checkpoint store (kept with `--save-checkpoints`,
/// temporary otherwise), so the saved and cold paths are bit-identical
/// by construction; `--from-checkpoints` replays an existing store,
/// refusing one written by a different frontend.
fn cmd_sample_isa<F: Frontend>(options: &Options, workload: &str) -> Result<(), String> {
    if options.epsilon.is_some() {
        return Err("--epsilon two-step tuning supports the built-in frontend only".into());
    }
    if options.save_checkpoints.is_some() && options.from_checkpoints.is_some() {
        return Err("--save-checkpoints and --from-checkpoints are mutually exclusive".into());
    }
    if options.sampler != SamplerKind::Systematic {
        return cmd_sample_sampled_isa::<F>(options, workload);
    }
    let cfg = machine(options);
    let sim = SmartsSim::new(cfg.clone());
    let conf = Confidence::new(options.confidence).map_err(|e| e.to_string())?;
    let executor = executor_for(options)?;

    if let Some(path) = &options.from_checkpoints {
        let replayed = replay_store_isa::<F>(&executor, &sim, path).map_err(|e| e.to_string())?;
        if options.json {
            println!("{}", canonical_report_line(&replayed.report.report));
            return Ok(());
        }
        let meta = &replayed.meta;
        println!("frontend      {}", F::ID);
        println!(
            "store         {path}: {} records (workload {}, scale {})",
            replayed.records, meta.benchmark, meta.scale
        );
        if let Some(damage) = &replayed.damage {
            println!(
                "WARNING       store damaged past record {}: {damage}; \
                 the intact prefix above was still replayed",
                replayed.records
            );
        }
        print_sample_report(
            &meta.benchmark,
            &cfg,
            &meta.params,
            &replayed.report.report,
            conf,
            Some(&replayed.report),
        );
        return Ok(());
    }

    if workload.is_empty() {
        return Err("--bench is required".into());
    }
    let params = sampling_params_isa::<F>(options, &cfg, workload)?;
    let (store_path, temporary) = match &options.save_checkpoints {
        Some(p) => (std::path::PathBuf::from(p), false),
        None => (temp_store_path(F::NAME), true),
    };
    let saved = sample_pipeline_saving_isa::<F>(
        &executor,
        &sim,
        workload,
        options.scale,
        &params,
        &store_path,
    )
    .map_err(|e| e.to_string());
    if temporary {
        let _ = std::fs::remove_file(&store_path);
    }
    let saved = saved?;
    if options.json {
        println!("{}", canonical_report_line(&saved.report.report));
        return Ok(());
    }
    println!("frontend      {}", F::ID);
    if !temporary {
        println!(
            "store         {} records, {:.2} MiB written to {}",
            saved.write.records,
            saved.write.bytes as f64 / (1024.0 * 1024.0),
            store_path.display()
        );
    }
    print_sample_report(
        workload,
        &cfg,
        &params,
        &saved.report.report,
        conf,
        Some(&saved.report),
    );
    Ok(())
}

/// Non-systematic sampling for a non-built-in frontend: warm a store
/// (kept or temporary), then replay the sampler-selected subset.
fn cmd_sample_sampled_isa<F: Frontend>(options: &Options, workload: &str) -> Result<(), String> {
    let cfg = machine(options);
    let sim = SmartsSim::new(cfg.clone());
    let spec = sampler_spec(options);
    spec.validate().map_err(|e| e.to_string())?;
    let executor = executor_for(options)?;

    let sampled: SampledReplay = if let Some(path) = &options.from_checkpoints {
        let store = MappedStore::open(path, &cfg).map_err(|e| e.to_string())?;
        replay_store_sampled_isa::<F>(&executor, &sim, &store, &spec).map_err(|e| e.to_string())?
    } else {
        if workload.is_empty() {
            return Err("--bench is required".into());
        }
        let params = sampling_params_isa::<F>(options, &cfg, workload)?;
        let (store_path, temporary) = match &options.save_checkpoints {
            Some(p) => (std::path::PathBuf::from(p), false),
            None => (temp_store_path(F::NAME), true),
        };
        let result = warm_store_saving_isa::<F>(
            &executor,
            &sim,
            workload,
            options.scale,
            &params,
            &store_path,
        )
        .map_err(|e| e.to_string())
        .and_then(|write| {
            let store = MappedStore::open(&store_path, &cfg).map_err(|e| e.to_string())?;
            let sampled = replay_store_sampled_isa::<F>(&executor, &sim, &store, &spec)
                .map_err(|e| e.to_string())?;
            Ok((write, sampled))
        });
        if temporary {
            let _ = std::fs::remove_file(&store_path);
        }
        let (write, sampled) = result?;
        if !temporary && !options.json {
            println!(
                "store         {} records, {:.2} MiB written to {}",
                write.records,
                write.bytes as f64 / (1024.0 * 1024.0),
                store_path.display()
            );
        }
        sampled
    };

    if options.json {
        println!("{}", sampled_report_line(&sampled));
        return Ok(());
    }
    let conf = Confidence::new(options.confidence).map_err(|e| e.to_string())?;
    println!("frontend      {}", F::ID);
    let label = sampled.meta.benchmark.clone();
    print_sampled_report(&spec, &sampled, &cfg, conf, &label);
    Ok(())
}

/// Records a benchmark's committed-instruction stream to a CRC-checked
/// trace file; `smarts sample --trace <file>` replays it through the
/// trace frontend.
fn cmd_trace_export(options: &Options) -> Result<(), String> {
    let out = options
        .out
        .as_deref()
        .ok_or("--out <file> is required for trace-export")?;
    let bench = benchmark(options)?;
    let loaded = bench.load();
    let mut cpu = smarts_isa::Cpu::new();
    let mut mem = loaded.memory.clone();
    let mut records = Vec::new();
    while !cpu.halted() {
        records.push(
            cpu.step(&loaded.program, &mut mem)
                .map_err(|e| format!("execution fault while tracing {}: {e}", bench.name()))?,
        );
    }
    write_trace(std::path::Path::new(out), bench.name(), &records)
        .map_err(|e| format!("cannot write trace {out}: {e}"))?;
    println!(
        "trace         {} records of {} written to {out}",
        records.len(),
        bench
    );
    println!("replay with   smarts sample --trace {out}");
    Ok(())
}

/// Inspects a checkpoint store without replaying it: identity, record
/// count, and the file-bytes vs decoded-resident-bytes gap that lazy
/// replay exploits. Opens unchecked, so it works on v1 stores, stores
/// for a different machine geometry, and damaged stores (the intact
/// prefix is reported alongside the damage).
fn cmd_ckpt_info(path: &str, json: bool) -> Result<(), String> {
    let store = MappedStore::open_unchecked(path).map_err(|e| e.to_string())?;
    let meta = store.meta();
    if json {
        use smarts_server::json::Json;
        let spans: Vec<Json> = (0..store.len())
            .map(|i| {
                let span = store.record_span(i);
                Json::obj(vec![
                    ("index", Json::U64(i as u64)),
                    ("offset", Json::U64(span.offset)),
                    ("payload_bytes", Json::U64(span.payload_bytes)),
                    ("crc32", Json::U64(u64::from(span.crc))),
                ])
            })
            .collect();
        let value = Json::obj(vec![
            ("path", Json::Str(path.to_string())),
            ("benchmark", Json::Str(meta.benchmark.clone())),
            ("isa", Json::Str(meta.isa.name().to_string())),
            ("scale", Json::F64(meta.scale)),
            (
                "fingerprint",
                Json::Str(format!("{:016x}", store.fingerprint())),
            ),
            ("version", Json::U64(u64::from(store.version()))),
            ("index_present", Json::Bool(store.index_present())),
            ("mapped", Json::Bool(store.is_mapped())),
            ("unit_size", Json::U64(meta.params.unit_size)),
            ("detailed_warming", Json::U64(meta.params.detailed_warming)),
            ("interval", Json::U64(meta.params.interval)),
            ("offset_units", Json::U64(meta.params.offset)),
            ("warming", Json::Str(format!("{:?}", meta.params.warming))),
            ("file_bytes", Json::U64(store.file_bytes())),
            ("header_bytes", Json::U64(store.header_bytes())),
            ("records_end", Json::U64(store.records_end())),
            ("records", Json::U64(store.len() as u64)),
            (
                "damage",
                match store.damage() {
                    Some(d) => Json::Str(d.to_string()),
                    None => Json::Null,
                },
            ),
            ("spans", Json::Arr(spans)),
        ]);
        println!("{}", value.to_line());
        return Ok(());
    }
    println!("store         {path}");
    println!(
        "identity      bench {}, scale {} (fingerprint {:016x})",
        meta.benchmark,
        meta.scale,
        store.fingerprint()
    );
    println!(
        "frontend      {} (replay needs the same frontend{})",
        meta.isa,
        if meta.isa == IsaId::Builtin {
            ""
        } else {
            "; pass --isa or --trace"
        }
    );
    println!(
        "design        U={}, W={}, k={}, j={}, warming {:?}",
        meta.params.unit_size,
        meta.params.detailed_warming,
        meta.params.interval,
        meta.params.offset,
        meta.params.warming
    );
    println!(
        "format        v{}, index {}, {}",
        store.version(),
        if store.index_present() {
            "present"
        } else {
            "absent (addressed by scan)"
        },
        if store.is_mapped() {
            "memory-mapped"
        } else {
            "buffered (mmap unavailable)"
        }
    );
    println!("records       {} intact", store.len());
    let mib = |bytes: u64| bytes as f64 / (1024.0 * 1024.0);
    println!(
        "file bytes    {} ({:.1} MiB; header {}, records end at {})",
        store.file_bytes(),
        mib(store.file_bytes()),
        store.header_bytes(),
        store.records_end()
    );
    match store.approx_decoded_bytes() {
        Ok(decoded) => {
            let ratio = decoded as f64 / store.file_bytes().max(1) as f64;
            println!(
                "decoded       ~{decoded} bytes resident if eager ({:.1} MiB, {ratio:.1}x the \
                 file); lazy replay keeps one decode cursor per worker instead",
                mib(decoded)
            );
        }
        Err(e) => println!("decoded       unavailable: {e}"),
    }
    if let Some(damage) = store.damage() {
        println!("damage        {damage}; records above are the intact prefix");
    }
    Ok(())
}

fn print_sample_report(
    bench_label: &str,
    cfg: &MachineConfig,
    params: &SamplingParams,
    report: &SampleReport,
    conf: Confidence,
    parallel: Option<&ParallelReport>,
) {
    let cpi = report.cpi();
    let epi = report.epi();
    let mpki = report.branch_mpki();
    let mem = report.memory_pki();
    println!("benchmark     {}", bench_label);
    println!(
        "machine       {} (U={}, W={}, k={}, j={})",
        cfg.name, params.unit_size, params.detailed_warming, params.interval, params.offset
    );
    println!(
        "sample        {} units, {:.4}% of the stream in detail",
        report.sample_size(),
        report.instructions.detailed_fraction() * 100.0
    );
    let pct = |e: smarts_stats::SampleEstimate| -> String {
        match e.achieved_epsilon(conf) {
            Ok(eps) => format!("±{:.2}%", eps * 100.0),
            Err(_) => "±?".to_string(),
        }
    };
    println!(
        "CPI           {:.4} {} (V̂ = {:.3})",
        cpi.mean(),
        pct(cpi),
        cpi.coefficient_of_variation()
    );
    println!("EPI           {:.2} nJ {}", epi.mean(), pct(epi));
    println!("branch MPKI   {:.2} {}", mpki.mean(), pct(mpki));
    println!("memory APKI   {:.2} {}", mem.mean(), pct(mem));
    println!(
        "wall clock    {:.2?} ({:.2?} fast-forward, {:.2?} detailed)",
        report.wall_total(),
        report.wall_functional,
        report.wall_detailed
    );
    if let Some(pr) = parallel {
        match &pr.pipeline {
            Some(ps) => {
                println!(
                    "parallel      {} mode, {} workers: {:.2?} overlapped \
                     ({:.2?} producer warming, depth {})",
                    pr.mode, pr.jobs, pr.parallel_wall, ps.producer_wall, ps.depth
                );
                println!(
                    "residency     peak {} checkpoints, {:.1} MiB \
                     ({} emitted in total)",
                    ps.peak_resident_checkpoints,
                    ps.peak_resident_bytes as f64 / (1024.0 * 1024.0),
                    ps.emitted
                );
            }
            None => println!(
                "parallel      {} mode, {} workers: {:.2?} sequential build + {:.2?} parallel",
                pr.mode, pr.jobs, pr.build_wall, pr.parallel_wall
            ),
        }
        if let Some(ss) = &pr.shard {
            println!(
                "warm shards   {}: {:.2?} parallel warm + {:.2?} stitch \
                 ({} units re-warmed, {} instructions)",
                ss.warm_jobs,
                ss.warm_wall,
                ss.stitch_wall,
                ss.rewarm_units(),
                ss.rewarm_instructions
            );
        }
        for w in &pr.workers {
            let i = &w.instructions;
            println!(
                "  worker {:<3} {:>5} units  {:>10.2?}  ff {:>12}  warm {:>10}  measured {:>10}",
                w.worker, w.units, w.wall, i.fast_forwarded, i.detailed_warmed, i.measured
            );
        }
    }
}

fn cmd_reference(options: &Options) -> Result<(), String> {
    let cfg = machine(options);
    let bench = benchmark(options)?;
    let sim = SmartsSim::new(cfg.clone());
    let reference = sim.reference(&bench, options.unit);
    println!("benchmark     {}", bench);
    println!("machine       {}", cfg.name);
    println!("instructions  {}", reference.instructions);
    println!("cycles        {}", reference.cycles);
    println!("CPI           {:.4}", reference.cpi);
    println!("EPI           {:.2} nJ", reference.epi);
    println!("wall clock    {:.2?}", reference.wall);
    Ok(())
}

fn cmd_compare(options: &Options) -> Result<(), String> {
    let bench = benchmark(options)?;
    let base = SmartsSim::new(MachineConfig::eight_way());
    let alt = SmartsSim::new(MachineConfig::sixteen_way());
    let mut params = sampling_params(options, base.config(), &bench)?;
    params.detailed_warming = 0; // per-machine recommendation
    let conf = Confidence::new(options.confidence).map_err(|e| e.to_string())?;
    let use_executor = options.jobs > 1
        || matches!(
            effective_mode(options),
            ParallelMode::Pipeline | ParallelMode::ShardedWarm
        );
    let cmp = if use_executor {
        let executor = executor_for(options)?;
        compare_machines_parallel(&executor, &base, &alt, &bench, &params)
            .map_err(|e| e.to_string())?
    } else {
        compare_machines(&base, &alt, &bench, &params).map_err(|e| e.to_string())?
    };
    println!("benchmark     {}", bench);
    println!("pairs         {}", cmp.pairs());
    println!("8-way CPI     {:.4}", cmp.baseline.cpi().mean());
    println!("16-way CPI    {:.4}", cmp.alternative.cpi().mean());
    println!("speedup       {:.3}x", cmp.speedup());
    println!(
        "ΔCPI          {:+.4} ± {:.4} ({}significant at {:.2}%)",
        cmp.cpi_delta(),
        cmp.delta_half_width(conf).map_err(|e| e.to_string())?,
        if cmp.is_significant(conf).map_err(|e| e.to_string())? {
            ""
        } else {
            "not "
        },
        options.confidence * 100.0,
    );
    println!(
        "pairing gain  {:.1}x tighter than independent runs",
        cmp.pairing_gain()
    );
    if use_executor {
        println!(
            "parallel      {} mode, {} workers per machine",
            effective_mode(options),
            options.jobs
        );
    }
    Ok(())
}

fn cmd_simpoint(options: &Options) -> Result<(), String> {
    let cfg = machine(options);
    let bench = benchmark(options)?;
    let sim = SmartsSim::new(cfg.clone());
    let sp_config = SimPointConfig {
        interval: (bench.approx_len() / 40).clamp(10_000, 200_000),
        ..SimPointConfig::default()
    };
    let estimate = estimate_cpi(&sim, &bench, &sp_config);
    println!("benchmark     {}", bench);
    println!("machine       {}", cfg.name);
    println!("interval      {} instructions", sp_config.interval);
    println!(
        "clusters      {} (of {} intervals)",
        estimate.selection.k, estimate.selection.population
    );
    println!(
        "CPI           {:.4} (no confidence measure — see the paper §5.3)",
        estimate.cpi
    );
    println!(
        "wall clock    {:.2?} profile + {:.2?} measure",
        estimate.wall_profile, estimate.wall_measure
    );
    Ok(())
}

fn cmd_cachesim(options: &Options) -> Result<(), String> {
    let cfg = machine(options);
    let bench = benchmark(options)?;
    let mut engine = FunctionalEngine::new(bench.load());
    let mut warm = WarmState::new(&cfg);
    engine.fast_forward_warming(u64::MAX - 1, &mut warm);
    let h = &warm.hierarchy;
    println!("benchmark     {}", bench);
    println!("machine       {} (functional cache simulation)", cfg.name);
    println!("instructions  {}", engine.position());
    let line = |name: &str, accesses: u64, misses: u64| {
        let ratio = if accesses == 0 {
            0.0
        } else {
            misses as f64 / accesses as f64
        };
        println!(
            "{name:<8} accesses {accesses:>12}  misses {misses:>10}  miss ratio {:>7.4}",
            ratio
        );
    };
    line("L1I", h.l1i().accesses(), h.l1i().misses());
    line("L1D", h.l1d().accesses(), h.l1d().misses());
    line("L2", h.l2().accesses(), h.l2().misses());
    line("ITLB", warm.itlb.accesses(), warm.itlb.misses());
    line("DTLB", warm.dtlb.accesses(), warm.dtlb.misses());
    Ok(())
}

fn cmd_bpredsim(options: &Options) -> Result<(), String> {
    let cfg = machine(options);
    let bench = benchmark(options)?;
    let mut engine = FunctionalEngine::new(bench.load());
    let mut warm = WarmState::new(&cfg);
    engine.fast_forward_warming(u64::MAX - 1, &mut warm);
    println!("benchmark     {}", bench);
    println!(
        "machine       {} (functional branch-predictor simulation)",
        cfg.name
    );
    println!("instructions  {}", engine.position());
    println!(
        "cond branches mispredicted: {} (direction miss ratio {:.4})",
        warm.bpred.cond_mispredicts(),
        warm.bpred.mispredict_ratio()
    );
    Ok(())
}

/// The job spec the sampling options describe, for `submit`.
fn job_spec(options: &Options) -> Result<JobSpec, String> {
    if options.trace.is_some() || options.isa == IsaId::Trace {
        return Err(
            "trace workloads are local files; the server cannot read them — \
             use `smarts sample --trace` instead"
                .to_string(),
        );
    }
    Ok(JobSpec {
        bench: options
            .bench
            .clone()
            .ok_or("--bench is required to submit a job")?,
        isa: options.isa,
        config: options.config,
        scale: options.scale,
        n: options.n,
        unit: options.unit,
        warming_len: options.warming_len,
        functional_warming: !options.no_functional_warming,
        offset: options.offset,
        jobs: options.jobs,
        depth: options.pipeline_depth,
        warm_jobs: options.warm_jobs,
        sampler: options.sampler,
        seed: options.seed,
        strata: options.strata,
        pilot: options.pilot,
        epsilon: options.epsilon.unwrap_or(0.03),
        confidence: options.confidence,
    })
}

/// Prints a job's report fetched from a server: raw canonical bytes
/// with `--json`, the usual prose report otherwise.
fn print_fetched_result(
    options: &Options,
    job: &str,
    source: &str,
    raw_report: &str,
) -> Result<(), String> {
    if options.json {
        println!("{raw_report}");
        return Ok(());
    }
    let value = smarts_server::json::parse(raw_report).map_err(|e| format!("bad report: {e}"))?;
    let report = report_from_json(&value)?;
    let conf = Confidence::new(options.confidence).map_err(|e| e.to_string())?;
    println!("job           {job} (result from {source})");
    let label = options
        .bench
        .clone()
        .unwrap_or_else(|| "<server job>".to_string());
    print_sample_report(
        &label,
        &machine(options),
        &report.params,
        &report,
        conf,
        None,
    );
    Ok(())
}

fn cmd_serve(options: &Options) -> Result<(), String> {
    let config = ServerConfig {
        addr: options.listen.clone(),
        store_dir: std::path::PathBuf::from(&options.store_dir),
        workers: options.server_workers,
        max_open_stores: options.max_open_stores,
    };
    let server = Server::bind(&config)?;
    let addr = server.local_addr();
    if let Some(path) = &options.port_file {
        std::fs::write(path, format!("{}\n", addr.port()))
            .map_err(|e| format!("cannot write port file {path}: {e}"))?;
    }
    println!(
        "serving on {addr} (stores in {}, {} workers); send {{\"cmd\":\"shutdown\"}} to drain",
        options.store_dir, options.server_workers
    );
    let summary = server.serve()?;
    if summary.abandoned.is_empty() {
        println!("drained cleanly");
        Ok(())
    } else {
        Err(format!(
            "abandoned {} queued job(s): {}",
            summary.abandoned.len(),
            summary.abandoned.join(", ")
        ))
    }
}

fn cmd_submit(options: &Options) -> Result<(), String> {
    let spec = job_spec(options)?;
    let mut client = Client::connect(&options.addr)?;
    let id = client.submit(&spec)?;
    if !options.wait {
        println!("submitted {id} to {}", options.addr);
        return Ok(());
    }
    let state = client.wait(&id)?;
    if state != "done" {
        let record = client.status(Some(&id))?;
        let detail = record
            .get("error")
            .and_then(smarts_server::json::Json::as_str)
            .unwrap_or("no detail");
        return Err(format!("job {id} ended {state}: {detail}"));
    }
    let (source, raw) = client.result(&id)?;
    print_fetched_result(options, &id, &source, &raw)
}

fn cmd_status(options: &Options) -> Result<(), String> {
    let mut client = Client::connect(&options.addr)?;
    let response = client.status(options.job.as_deref())?;
    if options.json {
        println!("{}", response.to_line());
        return Ok(());
    }
    let print_one = |v: &smarts_server::json::Json| {
        let text = |k: &str| {
            v.get(k)
                .and_then(smarts_server::json::Json::as_str)
                .unwrap_or("-")
                .to_string()
        };
        let count = |k: &str| {
            v.get(k)
                .and_then(smarts_server::json::Json::as_u64)
                .unwrap_or(0)
        };
        println!(
            "{:<8} {:<10} {:<10} {:<7} emitted {:>6}  replayed {:>6}  {}",
            text("job"),
            text("bench"),
            text("state"),
            text("source"),
            count("emitted"),
            count("replayed"),
            v.get("error")
                .and_then(smarts_server::json::Json::as_str)
                .unwrap_or("")
        );
    };
    match response
        .get("jobs")
        .and_then(smarts_server::json::Json::as_arr)
    {
        Some(jobs) => {
            for job in jobs {
                print_one(job);
            }
            if jobs.is_empty() {
                println!("no jobs");
            }
        }
        None => print_one(&response),
    }
    Ok(())
}

fn cmd_result(options: &Options) -> Result<(), String> {
    let id = options.job.clone().ok_or("--job is required")?;
    let mut client = Client::connect(&options.addr)?;
    let (source, raw) = client.result(&id)?;
    print_fetched_result(options, &id, &source, &raw)
}

fn cmd_cancel(options: &Options) -> Result<(), String> {
    let id = options.job.clone().ok_or("--job is required")?;
    let mut client = Client::connect(&options.addr)?;
    let was = client.cancel(&id)?;
    println!("cancellation requested for {id} (was {was})");
    Ok(())
}

fn cmd_shutdown(options: &Options) -> Result<(), String> {
    let mut client = Client::connect(&options.addr)?;
    client.shutdown()?;
    println!("server at {} is draining", options.addr);
    Ok(())
}

/// Entry point: dispatches a raw argument vector to a subcommand.
///
/// # Errors
///
/// Returns a human-readable message for unknown commands or bad options.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let Some(command) = args.first() else {
        return Err("a command is required".into());
    };
    let rest = &args[1..];
    match command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "sample" => cmd_sample(&parse_options(rest)?),
        "reference" => cmd_reference(&parse_options(rest)?),
        "compare" => cmd_compare(&parse_options(rest)?),
        "simpoint" => cmd_simpoint(&parse_options(rest)?),
        "cachesim" => cmd_cachesim(&parse_options(rest)?),
        "bpredsim" => cmd_bpredsim(&parse_options(rest)?),
        "serve" => cmd_serve(&parse_options(rest)?),
        "submit" => cmd_submit(&parse_options(rest)?),
        "status" => cmd_status(&parse_options(rest)?),
        "result" => cmd_result(&parse_options(rest)?),
        "cancel" => cmd_cancel(&parse_options(rest)?),
        "trace-export" => cmd_trace_export(&parse_options(rest)?),
        "shutdown" => cmd_shutdown(&parse_options(rest)?),
        "ckpt-info" => {
            let json = rest.iter().any(|a| a == "--json");
            let paths: Vec<&String> = rest.iter().filter(|a| *a != "--json").collect();
            match paths.as_slice() {
                [path] => cmd_ckpt_info(path, json),
                _ => Err("usage: smarts ckpt-info <store> [--json]".into()),
            }
        }
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_full_option_set() {
        let args = strings(&[
            "--bench",
            "chase-1",
            "--config",
            "16",
            "--scale",
            "0.5",
            "--n",
            "42",
            "--u",
            "500",
            "--w",
            "3000",
            "--no-functional-warming",
            "--offset",
            "2",
            "--epsilon",
            "0.03",
            "--confidence",
            "0.95",
        ]);
        let options = parse_options(&args).unwrap();
        assert_eq!(options.bench.as_deref(), Some("chase-1"));
        assert_eq!(options.config, 16);
        assert_eq!(options.scale, 0.5);
        assert_eq!(options.n, 42);
        assert_eq!(options.unit, 500);
        assert_eq!(options.warming_len, Some(3000));
        assert!(options.no_functional_warming);
        assert_eq!(options.offset, 2);
        assert_eq!(options.epsilon, Some(0.03));
        assert_eq!(options.confidence, 0.95);
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse_options(&strings(&["--wat"])).is_err());
        assert!(parse_options(&strings(&["--config", "12"])).is_err());
        assert!(parse_options(&strings(&["--scale", "-1"])).is_err());
        assert!(parse_options(&strings(&["--n"])).is_err());
        assert!(parse_options(&strings(&["--jobs", "0"])).is_err());
        assert!(parse_options(&strings(&["--parallel-mode", "magic"])).is_err());
        assert!(parse_options(&strings(&["--pipeline-depth", "0"])).is_err());
        assert!(parse_options(&strings(&["--warm-jobs", "0"])).is_err());
        assert!(parse_options(&strings(&["--warm-jobs", "x"])).is_err());
    }

    #[test]
    fn parses_parallel_flags() {
        let options =
            parse_options(&strings(&["--jobs", "4", "--parallel-mode", "sharded"])).unwrap();
        assert_eq!(options.jobs, 4);
        assert_eq!(options.parallel_mode, ParallelMode::Sharded);
        let defaults = parse_options(&[]).unwrap();
        assert_eq!(defaults.jobs, 1);
        assert_eq!(defaults.parallel_mode, ParallelMode::Checkpoint);
        assert_eq!(defaults.pipeline_depth, smarts_exec::DEFAULT_PIPELINE_DEPTH);
        let piped = parse_options(&strings(&[
            "--parallel-mode",
            "pipeline",
            "--pipeline-depth",
            "2",
        ]))
        .unwrap();
        assert_eq!(piped.parallel_mode, ParallelMode::Pipeline);
        assert_eq!(piped.pipeline_depth, 2);
    }

    #[test]
    fn warm_jobs_implies_sharded_warm_mode() {
        let implied = parse_options(&strings(&["--warm-jobs", "4"])).unwrap();
        assert_eq!(implied.warm_jobs, 4);
        assert_eq!(implied.parallel_mode, ParallelMode::Checkpoint);
        assert_eq!(effective_mode(&implied), ParallelMode::ShardedWarm);

        let piped = parse_options(&strings(&[
            "--parallel-mode",
            "pipeline",
            "--warm-jobs",
            "2",
        ]))
        .unwrap();
        assert_eq!(effective_mode(&piped), ParallelMode::ShardedWarm);

        // An explicit leapfrog request is not silently upgraded …
        let leapfrog = parse_options(&strings(&[
            "--parallel-mode",
            "sharded",
            "--warm-jobs",
            "4",
        ]))
        .unwrap();
        assert_eq!(effective_mode(&leapfrog), ParallelMode::Sharded);

        // … and explicit sharded-warm works without --warm-jobs > 1.
        let explicit = parse_options(&strings(&["--parallel-mode", "sharded-warm"])).unwrap();
        assert_eq!(effective_mode(&explicit), ParallelMode::ShardedWarm);
        assert_eq!(explicit.warm_jobs, 1);
    }

    #[test]
    fn dispatch_rejects_unknown_commands() {
        assert!(dispatch(&strings(&["frobnicate"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn dispatch_runs_list_and_help() {
        assert!(dispatch(&strings(&["list"])).is_ok());
        assert!(dispatch(&strings(&["help"])).is_ok());
    }

    #[test]
    fn sample_requires_a_benchmark() {
        let err = dispatch(&strings(&["sample"])).unwrap_err();
        assert!(err.contains("--bench"));
    }

    #[test]
    fn sample_runs_end_to_end_at_tiny_scale() {
        dispatch(&strings(&[
            "sample", "--bench", "loopy-1", "--scale", "0.02", "--n", "8",
        ]))
        .unwrap();
    }

    #[test]
    fn compare_runs_end_to_end_at_tiny_scale() {
        dispatch(&strings(&[
            "compare", "--bench", "stream-2", "--scale", "0.05", "--n", "6",
        ]))
        .unwrap();
    }

    #[test]
    fn sample_runs_parallel_in_all_modes() {
        dispatch(&strings(&[
            "sample", "--bench", "loopy-1", "--scale", "0.02", "--n", "8", "--jobs", "2",
        ]))
        .unwrap();
        dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--n",
            "8",
            "--jobs",
            "2",
            "--parallel-mode",
            "sharded",
        ]))
        .unwrap();
        dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--n",
            "8",
            "--jobs",
            "2",
            "--parallel-mode",
            "pipeline",
            "--pipeline-depth",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn sample_runs_sharded_warm_end_to_end() {
        dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--n",
            "8",
            "--warm-jobs",
            "3",
        ]))
        .unwrap();
    }

    #[test]
    fn pipeline_mode_runs_without_an_explicit_jobs_flag() {
        // Pipeline mode routes through the executor even at jobs = 1:
        // warming still overlaps the single replayer.
        dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--n",
            "8",
            "--parallel-mode",
            "pipeline",
        ]))
        .unwrap();
    }

    #[test]
    fn compare_runs_parallel_end_to_end() {
        dispatch(&strings(&[
            "compare", "--bench", "stream-2", "--scale", "0.05", "--n", "6", "--jobs", "2",
        ]))
        .unwrap();
    }

    #[test]
    fn cachesim_and_bpredsim_run_end_to_end() {
        dispatch(&strings(&[
            "cachesim", "--bench", "chase-2", "--scale", "0.02",
        ]))
        .unwrap();
        dispatch(&strings(&[
            "bpredsim",
            "--bench",
            "branchy-1",
            "--scale",
            "0.02",
        ]))
        .unwrap();
    }

    #[test]
    fn save_and_replay_checkpoints_round_trip() {
        let path = std::env::temp_dir().join(format!(
            "smarts-cli-ckpt-roundtrip-{}.ckpt",
            std::process::id()
        ));
        let path_s = path.to_string_lossy().to_string();
        dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--n",
            "8",
            "--save-checkpoints",
            &path_s,
        ]))
        .unwrap();
        // Replay skips warming; the store supplies benchmark and design,
        // so no --bench is needed.
        dispatch(&strings(&[
            "sample",
            "--from-checkpoints",
            &path_s,
            "--jobs",
            "2",
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ckpt_info_inspects_a_saved_store_and_rejects_bad_usage() {
        let path =
            std::env::temp_dir().join(format!("smarts-cli-ckpt-info-{}.ckpt", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--n",
            "8",
            "--save-checkpoints",
            &path_s,
        ]))
        .unwrap();
        dispatch(&strings(&["ckpt-info", &path_s])).unwrap();
        std::fs::remove_file(&path).ok();

        let err = dispatch(&strings(&["ckpt-info"])).unwrap_err();
        assert!(err.contains("usage"), "unexpected error: {err}");
        let err = dispatch(&strings(&["ckpt-info", "/nonexistent/store.ckpt"])).unwrap_err();
        assert!(!err.is_empty());
    }

    #[test]
    fn checkpoint_flags_reject_bad_combinations() {
        let err = dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--epsilon",
            "0.03",
            "--save-checkpoints",
            "ignored.ckpt",
        ]))
        .unwrap_err();
        assert!(err.contains("--epsilon"));
        let err = dispatch(&strings(&[
            "sample",
            "--save-checkpoints",
            "a.ckpt",
            "--from-checkpoints",
            "b.ckpt",
        ]))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"));
        assert!(parse_options(&strings(&["--save-checkpoints"])).is_err());
        assert!(parse_options(&strings(&["--from-checkpoints"])).is_err());
    }

    #[test]
    fn replay_of_a_missing_store_is_a_clean_error() {
        let err = dispatch(&strings(&[
            "sample",
            "--from-checkpoints",
            "/nonexistent/smarts-no-such-store.ckpt",
        ]))
        .unwrap_err();
        assert!(err.contains("checkpoint store"));
    }

    #[test]
    fn unknown_benchmark_is_reported() {
        let err = dispatch(&strings(&["sample", "--bench", "nope-9"])).unwrap_err();
        assert!(err.contains("unknown benchmark"));
    }

    #[test]
    fn parses_sampler_flags_with_defaults_and_rejections() {
        let options = parse_options(&strings(&[
            "--sampler",
            "stratified",
            "--seed",
            "7",
            "--strata",
            "3",
            "--pilot",
            "12",
        ]))
        .unwrap();
        assert_eq!(options.sampler, SamplerKind::Stratified);
        assert_eq!(options.seed, 7);
        assert_eq!(options.strata, 3);
        assert_eq!(options.pilot, 12);

        let defaults = parse_options(&[]).unwrap();
        assert_eq!(defaults.sampler, SamplerKind::Systematic);
        assert_eq!(defaults.seed, 0);
        assert_eq!(defaults.strata, 4);
        assert_eq!(defaults.pilot, 0);

        assert!(parse_options(&strings(&["--sampler", "magic"]))
            .unwrap_err()
            .contains("unknown sampler"));
        assert!(parse_options(&strings(&["--strata", "0"])).is_err());
        assert!(parse_options(&strings(&["--seed", "x"])).is_err());
        assert!(parse_options(&strings(&["--pilot", "x"])).is_err());
    }

    #[test]
    fn sampled_strategies_run_cold_and_from_a_saved_store() {
        let path = std::env::temp_dir().join(format!(
            "smarts-cli-sampled-store-{}.ckpt",
            std::process::id()
        ));
        let path_s = path.to_string_lossy().to_string();
        // Stratified cold run that keeps its warmed store …
        dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--n",
            "12",
            "--sampler",
            "stratified",
            "--seed",
            "1",
            "--save-checkpoints",
            &path_s,
        ]))
        .unwrap();
        // … then an adaptive replay of the same store, parallel + JSON.
        dispatch(&strings(&[
            "sample",
            "--from-checkpoints",
            &path_s,
            "--sampler",
            "adaptive",
            "--seed",
            "1",
            "--jobs",
            "2",
            "--json",
        ]))
        .unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sampled_cold_run_cleans_up_its_temporary_store() {
        // No --save-checkpoints: the store is warmed into a temp file
        // and removed after the replay.
        dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--n",
            "12",
            "--sampler",
            "adaptive",
            "--epsilon",
            "0.05",
        ]))
        .unwrap();
    }

    #[test]
    fn sampled_save_and_from_are_still_mutually_exclusive() {
        let err = dispatch(&strings(&[
            "sample",
            "--sampler",
            "stratified",
            "--save-checkpoints",
            "a.ckpt",
            "--from-checkpoints",
            "b.ckpt",
        ]))
        .unwrap_err();
        assert!(err.contains("mutually exclusive"));
    }

    #[test]
    fn parses_and_validates_frontend_flags() {
        let options = parse_options(&strings(&["--isa", "risc"])).unwrap();
        assert_eq!(options.isa, IsaId::Risc);
        let options = parse_options(&strings(&["--trace", "t.smartstr"])).unwrap();
        assert_eq!(options.trace.as_deref(), Some("t.smartstr"));
        assert_eq!(options.isa, IsaId::Builtin);
        assert!(parse_options(&strings(&["--isa", "magic"]))
            .unwrap_err()
            .contains("--isa"));

        // --isa trace without a trace file or store is unusable …
        let err = dispatch(&strings(&["sample", "--isa", "trace"])).unwrap_err();
        assert!(err.contains("--trace"), "unexpected error: {err}");
        // … and --trace conflicts with an explicit risc request.
        let err = dispatch(&strings(&[
            "sample",
            "--isa",
            "risc",
            "--trace",
            "t.smartstr",
        ]))
        .unwrap_err();
        assert!(err.contains("trace frontend"), "unexpected error: {err}");
        // Two-step tuning stays built-in-frontend-only.
        let err = dispatch(&strings(&[
            "sample",
            "--isa",
            "risc",
            "--bench",
            "loopy-1",
            "--epsilon",
            "0.05",
        ]))
        .unwrap_err();
        assert!(err.contains("built-in"), "unexpected error: {err}");
        // Trace jobs cannot be submitted — the server has no access to
        // the client's trace file; the refusal happens before any
        // connection attempt.
        let err = dispatch(&strings(&[
            "submit",
            "--bench",
            "x",
            "--trace",
            "t.smartstr",
        ]))
        .unwrap_err();
        assert!(
            err.contains("smarts sample --trace"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn risc_frontend_samples_and_round_trips_a_store() {
        let name = smarts_workloads::risc_suite()[0].name().to_string();
        let path =
            std::env::temp_dir().join(format!("smarts-cli-risc-store-{}.ckpt", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        dispatch(&strings(&[
            "sample",
            "--isa",
            "risc",
            "--bench",
            &name,
            "--scale",
            "0.02",
            "--n",
            "8",
            "--save-checkpoints",
            &path_s,
        ]))
        .unwrap();
        // Replay through the same frontend works, inspecting works …
        dispatch(&strings(&[
            "sample",
            "--isa",
            "risc",
            "--from-checkpoints",
            &path_s,
            "--jobs",
            "2",
        ]))
        .unwrap();
        dispatch(&strings(&["ckpt-info", &path_s])).unwrap();
        // … and the built-in frontend refuses the store with the typed
        // mismatch.
        let err = dispatch(&strings(&["sample", "--from-checkpoints", &path_s])).unwrap_err();
        assert!(
            err.contains("frontend"),
            "expected a frontend mismatch, got: {err}"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn risc_frontend_runs_the_sampled_strategies() {
        let name = smarts_workloads::risc_suite()[0].name().to_string();
        dispatch(&strings(&[
            "sample",
            "--isa",
            "risc",
            "--bench",
            &name,
            "--scale",
            "0.02",
            "--n",
            "12",
            "--sampler",
            "stratified",
            "--seed",
            "1",
        ]))
        .unwrap();
    }

    #[test]
    fn trace_export_then_sample_round_trips() {
        let path =
            std::env::temp_dir().join(format!("smarts-cli-trace-{}.smartstr", std::process::id()));
        let path_s = path.to_string_lossy().to_string();
        dispatch(&strings(&[
            "trace-export",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--out",
            &path_s,
        ]))
        .unwrap();
        dispatch(&strings(&["sample", "--trace", &path_s, "--n", "8"])).unwrap();
        // The trace frontend flows through stores like any other.
        let store = std::env::temp_dir().join(format!(
            "smarts-cli-trace-store-{}.ckpt",
            std::process::id()
        ));
        let store_s = store.to_string_lossy().to_string();
        dispatch(&strings(&[
            "sample",
            "--trace",
            &path_s,
            "--n",
            "8",
            "--save-checkpoints",
            &store_s,
        ]))
        .unwrap();
        dispatch(&strings(&[
            "sample",
            "--isa",
            "trace",
            "--from-checkpoints",
            &store_s,
        ]))
        .unwrap();
        std::fs::remove_file(&store).ok();
        std::fs::remove_file(&path).ok();

        let err = dispatch(&strings(&["trace-export", "--bench", "loopy-1"])).unwrap_err();
        assert!(err.contains("--out"), "unexpected error: {err}");
    }

    #[test]
    fn ckpt_info_json_emits_a_machine_readable_inventory() {
        let path = std::env::temp_dir().join(format!(
            "smarts-cli-ckpt-info-json-{}.ckpt",
            std::process::id()
        ));
        let path_s = path.to_string_lossy().to_string();
        dispatch(&strings(&[
            "sample",
            "--bench",
            "loopy-1",
            "--scale",
            "0.02",
            "--n",
            "8",
            "--save-checkpoints",
            &path_s,
        ]))
        .unwrap();
        // Flag accepted in either position.
        dispatch(&strings(&["ckpt-info", &path_s, "--json"])).unwrap();
        dispatch(&strings(&["ckpt-info", "--json", &path_s])).unwrap();
        std::fs::remove_file(&path).ok();
        let err = dispatch(&strings(&["ckpt-info", "--json"])).unwrap_err();
        assert!(err.contains("usage"));
    }
}

//! Typed errors for the on-disk checkpoint store.

use smarts_isa::IsaId;
use std::fmt;

/// Everything that can go wrong opening, reading, or writing a
/// checkpoint store.
#[derive(Debug)]
#[non_exhaustive]
pub enum CkptError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a checkpoint
    /// store at all.
    BadMagic,
    /// The store was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The header failed its CRC or could not be parsed.
    HeaderCorrupted,
    /// The store was warmed for a different functional-warming geometry
    /// (caches, TLBs, predictor, memory latency) than the machine trying
    /// to replay it.
    FingerprintMismatch {
        /// Fingerprint of the machine attempting the replay.
        expected: u64,
        /// Fingerprint recorded in the store header.
        found: u64,
    },
    /// The store was written by a different instruction-set frontend
    /// than the one trying to replay it. Surfaced before any record is
    /// decoded, so a frontend mix-up reads as this typed error rather
    /// than a record-level decode failure.
    IsaMismatch {
        /// Frontend attempting the replay.
        expected: IsaId,
        /// Frontend recorded in the store header.
        found: IsaId,
    },
    /// A record failed its CRC or decoded inconsistently. Every record
    /// before it is intact and has already been (or can be) replayed.
    Corrupted {
        /// Zero-based index of the bad record.
        record: u64,
        /// What specifically failed.
        detail: &'static str,
    },
    /// The file ends mid-record. Every record before the tear is intact;
    /// `recovered` counts them — truncation-tolerant readers replay that
    /// prefix and surface this error for the rest.
    Truncated {
        /// Zero-based index of the torn record.
        record: u64,
        /// Intact records before the tear.
        recovered: u64,
    },
}

impl CkptError {
    /// Produces an equivalent error value. `CkptError` cannot be
    /// `Clone` (it wraps `std::io::Error`), but a [`crate::MappedStore`]
    /// must both *retain* the damage it found at open time and *hand it
    /// out by value* to every replay that asks — `replicate` bridges
    /// that: all variants copy exactly, and `Io` reproduces the kind
    /// and message.
    pub fn replicate(&self) -> CkptError {
        match self {
            CkptError::Io(e) => CkptError::Io(std::io::Error::new(e.kind(), e.to_string())),
            CkptError::BadMagic => CkptError::BadMagic,
            CkptError::UnsupportedVersion(v) => CkptError::UnsupportedVersion(*v),
            CkptError::HeaderCorrupted => CkptError::HeaderCorrupted,
            CkptError::FingerprintMismatch { expected, found } => CkptError::FingerprintMismatch {
                expected: *expected,
                found: *found,
            },
            CkptError::IsaMismatch { expected, found } => CkptError::IsaMismatch {
                expected: *expected,
                found: *found,
            },
            CkptError::Corrupted { record, detail } => CkptError::Corrupted {
                record: *record,
                detail,
            },
            CkptError::Truncated { record, recovered } => CkptError::Truncated {
                record: *record,
                recovered: *recovered,
            },
        }
    }
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint store I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint store (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint store format version {v}")
            }
            CkptError::HeaderCorrupted => write!(f, "checkpoint store header is corrupted"),
            CkptError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint store was warmed for a different machine geometry \
                 (store fingerprint {found:#018x}, this machine {expected:#018x})"
            ),
            CkptError::IsaMismatch { expected, found } => write!(
                f,
                "checkpoint store was written by the {found} frontend, \
                 not {expected}"
            ),
            CkptError::Corrupted { record, detail } => {
                write!(f, "checkpoint record {record} is corrupted: {detail}")
            }
            CkptError::Truncated { record, recovered } => write!(
                f,
                "checkpoint store is truncated at record {record} \
                 ({recovered} intact records recovered)"
            ),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

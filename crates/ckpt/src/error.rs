//! Typed errors for the on-disk checkpoint store.

use std::fmt;

/// Everything that can go wrong opening, reading, or writing a
/// checkpoint store.
#[derive(Debug)]
#[non_exhaustive]
pub enum CkptError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a checkpoint
    /// store at all.
    BadMagic,
    /// The store was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The header failed its CRC or could not be parsed.
    HeaderCorrupted,
    /// The store was warmed for a different functional-warming geometry
    /// (caches, TLBs, predictor, memory latency) than the machine trying
    /// to replay it.
    FingerprintMismatch {
        /// Fingerprint of the machine attempting the replay.
        expected: u64,
        /// Fingerprint recorded in the store header.
        found: u64,
    },
    /// A record failed its CRC or decoded inconsistently. Every record
    /// before it is intact and has already been (or can be) replayed.
    Corrupted {
        /// Zero-based index of the bad record.
        record: u64,
        /// What specifically failed.
        detail: &'static str,
    },
    /// The file ends mid-record. Every record before the tear is intact;
    /// `recovered` counts them — truncation-tolerant readers replay that
    /// prefix and surface this error for the rest.
    Truncated {
        /// Zero-based index of the torn record.
        record: u64,
        /// Intact records before the tear.
        recovered: u64,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint store I/O error: {e}"),
            CkptError::BadMagic => write!(f, "not a checkpoint store (bad magic)"),
            CkptError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint store format version {v}")
            }
            CkptError::HeaderCorrupted => write!(f, "checkpoint store header is corrupted"),
            CkptError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint store was warmed for a different machine geometry \
                 (store fingerprint {found:#018x}, this machine {expected:#018x})"
            ),
            CkptError::Corrupted { record, detail } => {
                write!(f, "checkpoint record {record} is corrupted: {detail}")
            }
            CkptError::Truncated { record, recovered } => write!(
                f,
                "checkpoint store is truncated at record {record} \
                 ({recovered} intact records recovered)"
            ),
        }
    }
}

impl std::error::Error for CkptError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CkptError {
    fn from(e: std::io::Error) -> Self {
        CkptError::Io(e)
    }
}

//! Flattening a [`UnitCheckpoint`] to word streams and delta-encoding
//! consecutive flats against each other.
//!
//! A checkpoint flattens into two parts:
//!
//! * a **fixed section** — unit start offset, architectural CPU state,
//!   and the full warm microarchitectural state. Its word count is a
//!   pure function of the machine geometry, so consecutive units'
//!   sections align positionally and delta-encode word-for-word.
//! * a **page set** — the memory snapshot's allocated 4 KiB pages,
//!   sorted by page index. Each page deltas against the *previous
//!   unit's page with the same index* (zeros when absent). Consecutive
//!   snapshots share unmodified pages copy-on-write, so most page
//!   deltas are all-zero and run-length-collapse to a few bytes.
//!
//! Warm state between nearby units differs only where the stream
//! touched new sets/counters, so the fixed-section deltas are sparse
//! too — this is what makes the on-disk store far smaller than the
//! resident library.

use crate::codec::{apply_deltas, decode_deltas, read_varint, write_varint, RleEncoder};
use crate::error::CkptError;
use smarts_core::{EngineSnapshot, UnitCheckpoint};
use smarts_isa::{BuiltinIsa, Isa, Memory};
use smarts_uarch::{MachineConfig, WarmState};

/// Words per memory page (4 KiB of little-endian `u64`s).
pub(crate) const PAGE_WORDS: usize = Memory::PAGE_BYTES / 8;

/// A checkpoint flattened to delta-friendly word streams.
///
/// This is the store's canonical unit of comparison: every structure's
/// `save_state` emits a *canonical* serialization (see
/// `smarts_uarch::Cache::save_state`), so two checkpoints whose states
/// behave identically flatten to equal word streams regardless of the
/// history that built them. Sharded-warm stitching compares flats with
/// `==` to detect re-warm convergence, and equal flats delta-encode to
/// identical record bytes — the bit-identity argument of DESIGN.md
/// §3.6e rests on this equivalence.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatCheckpoint {
    /// Unit start, CPU state, warm state — geometry-determined length.
    pub(crate) fixed: Vec<u64>,
    /// `(page_index, contents)` sorted ascending by index.
    pub(crate) pages: Vec<(u64, Vec<u64>)>,
}

impl FlatCheckpoint {
    /// The instruction offset at which this checkpoint's sampling unit
    /// starts.
    pub fn unit_start(&self) -> u64 {
        self.fixed.first().copied().unwrap_or(0)
    }

    /// Flattens a checkpoint into word streams. The frontend determines
    /// only how the CPU-state words are produced ([`Isa::save_state`]);
    /// the container layout is frontend-independent.
    pub fn flatten<I: Isa>(checkpoint: &UnitCheckpoint<I>) -> Self {
        let mut fixed = vec![checkpoint.unit_start()];
        I::save_state(checkpoint.snapshot().cpu(), &mut fixed);
        checkpoint.warm().save_state(&mut fixed);
        let pages = checkpoint
            .snapshot()
            .memory()
            .pages_sorted()
            .into_iter()
            .map(|(index, bytes)| {
                let words = bytes
                    .chunks_exact(8)
                    .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
                    .collect();
                (index, words)
            })
            .collect();
        FlatCheckpoint { fixed, pages }
    }

    /// Rebuilds a built-in-frontend checkpoint — see
    /// [`FlatCheckpoint::rebuild_isa`].
    pub fn rebuild(&self, cfg: &MachineConfig) -> Result<UnitCheckpoint, &'static str> {
        self.rebuild_isa::<BuiltinIsa>(cfg)
    }

    /// Rebuilds the checkpoint for a machine of the geometry the store
    /// was written for, parsing the CPU-state words under frontend `I`.
    /// Fails (with a diagnostic) when the word stream does not parse
    /// against that geometry — the corrupted-record path. Callers gate
    /// on the store's recorded [`smarts_isa::IsaId`] first, so a
    /// frontend mix-up surfaces as a typed
    /// [`CkptError::IsaMismatch`](crate::CkptError::IsaMismatch) rather
    /// than falling through to this parse failure.
    pub fn rebuild_isa<I: Isa>(
        &self,
        cfg: &MachineConfig,
    ) -> Result<UnitCheckpoint<I>, &'static str> {
        let (&unit_start, rest) = self.fixed.split_first().ok_or("fixed section is empty")?;
        let mut cpu = I::new_cpu();
        let mut used =
            I::load_state(&mut cpu, rest).ok_or("fixed section too short for CPU state")?;
        let mut warm = WarmState::new(cfg);
        used += warm
            .load_state(
                rest.get(used..)
                    .ok_or("fixed section ends inside CPU state")?,
            )
            .ok_or("fixed section too short for warm state")?;
        if used != rest.len() {
            return Err("fixed section longer than the machine geometry requires");
        }
        let mut memory = Memory::new();
        let mut bytes = vec![0u8; Memory::PAGE_BYTES];
        for (index, words) in &self.pages {
            if words.len() != PAGE_WORDS {
                return Err("page has the wrong word count");
            }
            for (chunk, word) in bytes.chunks_exact_mut(8).zip(words) {
                chunk.copy_from_slice(&word.to_le_bytes());
            }
            memory.insert_page(*index, &bytes);
        }
        Ok(UnitCheckpoint::from_parts(
            unit_start,
            EngineSnapshot::from_parts(cpu, memory),
            warm,
        ))
    }

    /// The page contents stored for `index`, if any (pages are sorted,
    /// so this is a binary search).
    fn page(&self, index: u64) -> Option<&[u64]> {
        self.pages
            .binary_search_by_key(&index, |&(i, _)| i)
            .ok()
            .map(|k| self.pages[k].1.as_slice())
    }

    /// Approximate resident bytes of this flat: the word storage of the
    /// fixed section and every page. This is what one lazy-replay
    /// cursor keeps materialized at a time — the per-worker residency
    /// unit the `store_mem` bench and the pipeline accounting report.
    pub fn approx_bytes(&self) -> u64 {
        let page_words: u64 = self.pages.iter().map(|(_, w)| 1 + w.len() as u64).sum();
        8 * (self.fixed.len() as u64 + page_words)
    }
}

/// A still-encoded record borrowed straight from a mapped store — the
/// zero-copy handle [`crate::MappedStore::record`] hands out. The
/// payload bytes live in the file mapping (or its owned-buffer
/// fallback); nothing is materialized until [`FlatCheckpointRef::decode`]
/// or [`FlatCheckpointRef::advance`] runs.
#[derive(Debug, Clone, Copy)]
pub struct FlatCheckpointRef<'a> {
    pub(crate) payload: &'a [u8],
    pub(crate) record: u64,
}

impl<'a> FlatCheckpointRef<'a> {
    /// The record's index in the store.
    pub fn record(&self) -> u64 {
        self.record
    }

    /// The encoded payload bytes, borrowed from the mapping.
    pub fn payload(&self) -> &'a [u8] {
        self.payload
    }

    /// Decodes this record against the previous flat (`None` for
    /// record 0), allocating a fresh [`FlatCheckpoint`].
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupted`] when the payload does not parse as a
    /// delta record against `prev`.
    pub fn decode(&self, prev: Option<&FlatCheckpoint>) -> Result<FlatCheckpoint, CkptError> {
        decode_record(self.payload, prev).map_err(|detail| CkptError::Corrupted {
            record: self.record,
            detail,
        })
    }

    /// Decodes this record by consuming and updating the previous flat
    /// in place — the cursor fast path. Unchanged pages (a single
    /// full-length zero run) are moved, not copied, so only the CoW
    /// page gaps a record actually encodes get touched.
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupted`] when the payload does not parse; the
    /// consumed `prev` is lost either way, so callers restart from the
    /// store on error.
    pub fn advance(&self, prev: FlatCheckpoint) -> Result<FlatCheckpoint, CkptError> {
        advance_record(self.payload, prev).map_err(|detail| CkptError::Corrupted {
            record: self.record,
            detail,
        })
    }
}

/// Encodes one record payload: `self` delta-encoded against `prev`
/// (record 0 deltas against all-zeros).
pub(crate) fn encode_record(curr: &FlatCheckpoint, prev: Option<&FlatCheckpoint>) -> Vec<u8> {
    if let Some(prev) = prev {
        debug_assert_eq!(
            prev.fixed.len(),
            curr.fixed.len(),
            "fixed-section length is a pure function of the geometry"
        );
    }
    let mut out = Vec::new();
    write_varint(&mut out, curr.fixed.len() as u64);
    let mut enc = RleEncoder::new(&mut out);
    for (i, &word) in curr.fixed.iter().enumerate() {
        let reference = prev.map_or(0, |p| p.fixed[i]);
        enc.push(word.wrapping_sub(reference));
    }
    enc.finish();

    write_varint(&mut out, curr.pages.len() as u64);
    let mut last_index = 0u64;
    for (k, (index, words)) in curr.pages.iter().enumerate() {
        let delta = if k == 0 { *index } else { index - last_index };
        write_varint(&mut out, delta);
        last_index = *index;
        let reference = prev.and_then(|p| p.page(*index));
        let mut enc = RleEncoder::new(&mut out);
        for (j, &word) in words.iter().enumerate() {
            let base = reference.map_or(0, |r| r[j]);
            enc.push(word.wrapping_sub(base));
        }
        enc.finish();
    }
    out
}

/// Upper bounds on decoded sizes, so a corrupted length field cannot
/// drive a multi-gigabyte allocation before the mismatch is noticed.
const MAX_FIXED_WORDS: u64 = 1 << 28;
const MAX_PAGES: u64 = 1 << 24;

/// Decodes one record payload against the previous flat (record 0
/// decodes against all-zeros). Returns a diagnostic on any structural
/// inconsistency.
pub(crate) fn decode_record(
    payload: &[u8],
    prev: Option<&FlatCheckpoint>,
) -> Result<FlatCheckpoint, &'static str> {
    let mut pos = 0usize;
    let fixed_len = read_varint(payload, &mut pos).ok_or("truncated fixed-section length")?;
    if fixed_len == 0 || fixed_len > MAX_FIXED_WORDS {
        return Err("implausible fixed-section length");
    }
    if let Some(prev) = prev {
        if prev.fixed.len() as u64 != fixed_len {
            return Err("fixed-section length changed between records");
        }
    }
    let deltas = decode_deltas(payload, &mut pos, fixed_len as usize)
        .ok_or("undecodable fixed-section deltas")?;
    let fixed = deltas
        .iter()
        .enumerate()
        .map(|(i, &d)| d.wrapping_add(prev.map_or(0, |p| p.fixed[i])))
        .collect();

    let page_count = read_varint(payload, &mut pos).ok_or("truncated page count")?;
    if page_count > MAX_PAGES {
        return Err("implausible page count");
    }
    let mut pages = Vec::with_capacity(page_count as usize);
    let mut last_index = 0u64;
    for k in 0..page_count {
        let delta = read_varint(payload, &mut pos).ok_or("truncated page index")?;
        if k > 0 && delta == 0 {
            return Err("page indices are not strictly ascending");
        }
        let index = last_index
            .checked_add(delta)
            .ok_or("page index overflows")?;
        last_index = index;
        let deltas =
            decode_deltas(payload, &mut pos, PAGE_WORDS).ok_or("undecodable page deltas")?;
        let reference = prev.and_then(|p| p.page(index));
        let words = deltas
            .iter()
            .enumerate()
            .map(|(j, &d)| d.wrapping_add(reference.map_or(0, |r| r[j])))
            .collect();
        pages.push((index, words));
    }
    if pos != payload.len() {
        return Err("trailing bytes after the last page");
    }
    Ok(FlatCheckpoint { fixed, pages })
}

/// Decodes one record payload by consuming the previous flat and
/// updating it in place: the fixed section is patched word-by-word
/// where deltas are nonzero, unchanged pages are *moved* out of `prev`,
/// and only changed pages are cloned and patched. Produces bit-for-bit
/// the same flat as [`decode_record`] (asserted by tests), without the
/// full-size allocations — this is what makes a lazy replay cursor
/// O(changed words) per step.
pub(crate) fn advance_record(
    payload: &[u8],
    prev: FlatCheckpoint,
) -> Result<FlatCheckpoint, &'static str> {
    let mut pos = 0usize;
    let fixed_len = read_varint(payload, &mut pos).ok_or("truncated fixed-section length")?;
    if fixed_len == 0 || fixed_len > MAX_FIXED_WORDS {
        return Err("implausible fixed-section length");
    }
    if prev.fixed.len() as u64 != fixed_len {
        return Err("fixed-section length changed between records");
    }
    let FlatCheckpoint {
        mut fixed,
        pages: mut prev_pages,
    } = prev;
    apply_deltas(payload, &mut pos, &mut fixed).ok_or("undecodable fixed-section deltas")?;

    let page_count = read_varint(payload, &mut pos).ok_or("truncated page count")?;
    if page_count > MAX_PAGES {
        return Err("implausible page count");
    }
    let mut pages = Vec::with_capacity(page_count as usize);
    let mut last_index = 0u64;
    for k in 0..page_count {
        let delta = read_varint(payload, &mut pos).ok_or("truncated page index")?;
        if k > 0 && delta == 0 {
            return Err("page indices are not strictly ascending");
        }
        let index = last_index
            .checked_add(delta)
            .ok_or("page index overflows")?;
        last_index = index;
        // Indices are strictly ascending, so each predecessor page is
        // referenced at most once — taking it out is safe.
        let reference = prev_pages.binary_search_by_key(&index, |&(i, _)| i).ok();
        // Peek: a page encoded as one full-length zero run is
        // unchanged; move it instead of decoding PAGE_WORDS deltas.
        let mark = pos;
        let unchanged = match read_varint(payload, &mut pos) {
            Some(0) => read_varint(payload, &mut pos) == Some(PAGE_WORDS as u64),
            _ => false,
        };
        let words = if unchanged {
            match reference {
                Some(at) => std::mem::take(&mut prev_pages[at].1),
                None => vec![0u64; PAGE_WORDS],
            }
        } else {
            pos = mark;
            let mut words = match reference {
                Some(at) => prev_pages[at].1.clone(),
                None => vec![0u64; PAGE_WORDS],
            };
            apply_deltas(payload, &mut pos, &mut words).ok_or("undecodable page deltas")?;
            words
        };
        pages.push((index, words));
    }
    if pos != payload.len() {
        return Err("trailing bytes after the last page");
    }
    Ok(FlatCheckpoint { fixed, pages })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(fixed: Vec<u64>, pages: Vec<(u64, Vec<u64>)>) -> FlatCheckpoint {
        FlatCheckpoint { fixed, pages }
    }

    fn page_of(value: u64) -> Vec<u64> {
        let mut p = vec![0u64; PAGE_WORDS];
        p[7] = value;
        p
    }

    #[test]
    fn record_round_trips_without_predecessor() {
        let a = flat(
            vec![10, 20, 0, 0, 30],
            vec![(3, page_of(9)), (17, page_of(4))],
        );
        let payload = encode_record(&a, None);
        let decoded = decode_record(&payload, None).unwrap();
        assert_eq!(decoded.fixed, a.fixed);
        assert_eq!(decoded.pages, a.pages);
    }

    #[test]
    fn record_round_trips_against_predecessor() {
        let a = flat(
            vec![10, 20, 0, 0, 30],
            vec![(3, page_of(9)), (17, page_of(4))],
        );
        // b shares page 3 verbatim, modifies page 17, adds page 40.
        let b = flat(
            vec![11, 20, 0, 5, 30],
            vec![(3, page_of(9)), (17, page_of(5)), (40, page_of(1))],
        );
        let payload_a = encode_record(&a, None);
        let payload_b = encode_record(&b, Some(&a));
        // The shared page collapses: b's payload is dominated by the two
        // non-shared pages, a's by both of its pages.
        assert!(payload_b.len() < payload_a.len() + 64);
        let da = decode_record(&payload_a, None).unwrap();
        let db = decode_record(&payload_b, Some(&da)).unwrap();
        assert_eq!(db.fixed, b.fixed);
        assert_eq!(db.pages, b.pages);
    }

    #[test]
    fn identical_flats_encode_to_almost_nothing() {
        let a = flat(vec![7; 1000], vec![(5, page_of(2))]);
        let payload = encode_record(&a, Some(&a));
        // All deltas zero: one length varint, one zero-run token pair per
        // stream, one page-index varint.
        assert!(payload.len() < 24, "got {} bytes", payload.len());
    }

    #[test]
    fn advance_matches_decode_across_a_chain() {
        // A three-record chain exercising every page transition: kept
        // verbatim (3), modified (17), added (40), dropped (17 again).
        let chain = [
            flat(
                vec![10, 20, 0, 0, 30],
                vec![(3, page_of(9)), (17, page_of(4))],
            ),
            flat(
                vec![11, 20, 0, 5, 30],
                vec![(3, page_of(9)), (17, page_of(5)), (40, page_of(1))],
            ),
            flat(
                vec![12, 21, 0, 5, 30],
                vec![(3, page_of(9)), (40, page_of(2))],
            ),
        ];
        let mut prev_decoded: Option<FlatCheckpoint> = None;
        let mut rolling: Option<FlatCheckpoint> = None;
        for curr in &chain {
            let payload = encode_record(curr, prev_decoded.as_ref());
            let decoded = decode_record(&payload, prev_decoded.as_ref()).unwrap();
            let advanced = match rolling.take() {
                None => decode_record(&payload, None).unwrap(),
                Some(prev) => advance_record(&payload, prev).unwrap(),
            };
            assert_eq!(advanced, decoded);
            assert_eq!(&advanced, curr);
            prev_decoded = Some(decoded);
            rolling = Some(advanced);
        }
    }

    #[test]
    fn advance_rejects_what_decode_rejects() {
        let a = flat(vec![1, 2, 3], vec![(0, page_of(1))]);
        let payload = encode_record(&a, None);
        let b = flat(vec![1, 2, 3], vec![(0, page_of(2))]);
        let pb = encode_record(&b, Some(&a));
        // Truncated payload.
        let da = decode_record(&payload, None).unwrap();
        assert!(advance_record(&pb[..pb.len() - 1], da.clone()).is_err());
        // Trailing garbage.
        let mut longer = pb.clone();
        longer.push(0x55);
        assert!(advance_record(&longer, da.clone()).is_err());
        // Fixed-length change between records.
        let c = flat(vec![1, 2, 3, 4], vec![]);
        let pc = encode_record(&c, None);
        assert!(advance_record(&pc, da).is_err());
    }

    #[test]
    fn decode_rejects_structural_damage() {
        let a = flat(vec![1, 2, 3], vec![(0, page_of(1))]);
        let payload = encode_record(&a, None);
        // Truncated payload.
        assert!(decode_record(&payload[..payload.len() - 1], None).is_err());
        // Trailing garbage.
        let mut longer = payload.clone();
        longer.push(0x55);
        assert!(decode_record(&longer, None).is_err());
        // Fixed-length change between records.
        let b = flat(vec![1, 2, 3, 4], vec![]);
        let pb = encode_record(&b, None);
        let da = decode_record(&payload, None).unwrap();
        assert!(decode_record(&pb, Some(&da)).is_err());
    }
}

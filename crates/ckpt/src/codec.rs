//! Hand-rolled byte-level codecs for the checkpoint store: LEB128
//! varints, zigzag mapping, run-length encoding of zero runs, and IEEE
//! CRC-32 — everything the on-disk format needs, with no dependencies
//! (the workspace builds offline).

/// Appends `value` as an unsigned LEB128 varint (7 payload bits per
/// byte, high bit = continuation).
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `input` at `*pos`, advancing `*pos`.
/// Returns `None` on truncation or a value that overflows 64 bits.
pub fn read_varint(input: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = input.get(*pos)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte & 0x7E != 0) {
            return None;
        }
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed delta so small-magnitude values of either sign
/// get small codes: 0 → 0, -1 → 1, 1 → 2, -2 → 3, …
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Streams a run of word deltas as varint tokens with zero runs
/// collapsed: token `0` marks a zero run and is followed by the varint
/// run length (≥ 1); any token `t ≥ 1` is one word with delta
/// `unzigzag(t)`. The scheme is unambiguous because a nonzero delta
/// zigzag-maps to a value ≥ 1.
pub struct RleEncoder<'a> {
    out: &'a mut Vec<u8>,
    zero_run: u64,
}

impl<'a> RleEncoder<'a> {
    /// Starts an encoder appending tokens to `out`.
    pub fn new(out: &'a mut Vec<u8>) -> Self {
        RleEncoder { out, zero_run: 0 }
    }

    /// Encodes one word delta (a wrapping difference reinterpreted as
    /// signed for the zigzag mapping).
    pub fn push(&mut self, delta: u64) {
        if delta == 0 {
            self.zero_run += 1;
            return;
        }
        self.flush_run();
        write_varint(self.out, zigzag(delta as i64));
    }

    fn flush_run(&mut self) {
        if self.zero_run > 0 {
            write_varint(self.out, 0);
            write_varint(self.out, self.zero_run);
            self.zero_run = 0;
        }
    }

    /// Flushes any pending zero run. Must be called once per delta
    /// stream (streams are length-delimited by the decoder's word
    /// count, so no terminator is written).
    pub fn finish(mut self) {
        self.flush_run();
    }
}

/// Decodes exactly `count` word deltas from `input` at `*pos`. Returns
/// `None` on truncation, a zero-length run, or a run overshooting
/// `count` — every way a corrupted stream can disagree with the fixed
/// word count the caller derives from the machine geometry.
pub fn decode_deltas(input: &[u8], pos: &mut usize, count: usize) -> Option<Vec<u64>> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let token = read_varint(input, pos)?;
        if token == 0 {
            let run = read_varint(input, pos)?;
            if run == 0 || run > (count - out.len()) as u64 {
                return None;
            }
            out.resize(out.len() + run as usize, 0);
        } else {
            out.push(unzigzag(token) as u64);
        }
    }
    Some(out)
}

/// Applies exactly `words.len()` word deltas from `input` at `*pos`
/// onto `words` in place — the lazy-decode fast path. Zero runs skip
/// forward without touching the reference words (a zero delta leaves
/// the word unchanged), so an unchanged page costs two varint reads
/// and no writes. Same rejection rules as [`decode_deltas`]; on
/// `None`, `words` may be partially updated and must be discarded.
pub fn apply_deltas(input: &[u8], pos: &mut usize, words: &mut [u64]) -> Option<()> {
    let mut filled = 0usize;
    while filled < words.len() {
        let token = read_varint(input, pos)?;
        if token == 0 {
            let run = read_varint(input, pos)?;
            if run == 0 || run > (words.len() - filled) as u64 {
                return None;
            }
            filled += run as usize;
        } else {
            words[filled] = words[filled].wrapping_add(unzigzag(token) as u64);
            filled += 1;
        }
    }
    Some(())
}

/// IEEE CRC-32 lookup table (reflected polynomial 0xEDB88320), built at
/// compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC-32 of `bytes` (the zlib/PNG checksum).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for value in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, value);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Some(value));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert_eq!(
            read_varint(&[0x80], &mut pos),
            None,
            "dangling continuation"
        );
        // 11 continuation bytes overflow 64 bits.
        let overlong = [0xFFu8; 11];
        pos = 0;
        assert_eq!(read_varint(&overlong, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for value in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 1234567, -7654321] {
            assert_eq!(unzigzag(zigzag(value)), value);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn rle_round_trips_mixed_stream() {
        let deltas: Vec<u64> = vec![0, 0, 0, 5, 0, u64::MAX, 0, 0, 1, 0];
        let mut buf = Vec::new();
        let mut enc = RleEncoder::new(&mut buf);
        for &d in &deltas {
            enc.push(d);
        }
        enc.finish();
        let mut pos = 0;
        let decoded = decode_deltas(&buf, &mut pos, deltas.len()).unwrap();
        assert_eq!(decoded, deltas);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn rle_collapses_long_zero_runs() {
        let mut buf = Vec::new();
        let mut enc = RleEncoder::new(&mut buf);
        for _ in 0..100_000 {
            enc.push(0);
        }
        enc.finish();
        assert!(
            buf.len() < 8,
            "zero run should be a few bytes, got {}",
            buf.len()
        );
        let mut pos = 0;
        let decoded = decode_deltas(&buf, &mut pos, 100_000).unwrap();
        assert!(decoded.iter().all(|&d| d == 0));
    }

    #[test]
    fn apply_deltas_matches_decode_plus_add() {
        let reference: Vec<u64> = (0..64u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        let deltas: Vec<u64> = (0..64u64)
            .map(|i| if i % 5 == 0 { i.wrapping_mul(31) } else { 0 })
            .collect();
        let mut buf = Vec::new();
        let mut enc = RleEncoder::new(&mut buf);
        for &d in &deltas {
            enc.push(d);
        }
        enc.finish();

        let mut pos = 0;
        let decoded = decode_deltas(&buf, &mut pos, 64).unwrap();
        let eager: Vec<u64> = decoded
            .iter()
            .zip(&reference)
            .map(|(&d, &r)| d.wrapping_add(r))
            .collect();

        let mut in_place = reference.clone();
        let mut pos2 = 0;
        apply_deltas(&buf, &mut pos2, &mut in_place).unwrap();
        assert_eq!(in_place, eager);
        assert_eq!(pos2, pos);
    }

    #[test]
    fn apply_deltas_rejects_what_decode_rejects() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 0);
        write_varint(&mut buf, 10); // run of 10 into a 5-word stream
        let mut words = [0u64; 5];
        let mut pos = 0;
        assert_eq!(apply_deltas(&buf, &mut pos, &mut words), None);
        let mut pos2 = 0;
        assert_eq!(apply_deltas(&[0x80], &mut pos2, &mut words), None);
    }

    #[test]
    fn rle_decoder_rejects_overshooting_runs() {
        let mut buf = Vec::new();
        write_varint(&mut buf, 0);
        write_varint(&mut buf, 10); // run of 10 into a 5-word stream
        let mut pos = 0;
        assert_eq!(decode_deltas(&buf, &mut pos, 5), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The canonical check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}

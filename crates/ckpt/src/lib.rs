//! Persistent on-disk checkpoint store: warm once, replay many configs.
//!
//! The SMARTS rate is bounded by functional warming (`S_FW`), and the
//! in-memory [`smarts_core::CheckpointLibrary`] already lets one warming
//! pass serve many detailed replays — but only within one process. This
//! crate persists the warm-state library to disk so the warming pass is
//! paid **once per (benchmark, sampling design, warm geometry)** and
//! amortized across every later experiment that only changes the
//! detailed-machine core (widths, window, FUs, store buffer): the
//! TurboSMARTS checkpoint direction, with the delta-encoding the ROADMAP
//! flags as the open footprint item.
//!
//! The format is hand-rolled and dependency-free (the workspace builds
//! offline — no serde/bincode):
//!
//! * a versioned header carrying a [`warm_fingerprint`] of the
//!   functional-warming geometry (caches, TLBs, predictor, memory
//!   latency), so a store warmed for a different machine is rejected
//!   with a typed [`CkptError::FingerprintMismatch`] before any record
//!   is read;
//! * one record per sampling unit, holding the unit's
//!   [`smarts_core::UnitCheckpoint`] flattened to word streams and
//!   **delta-encoded against the previous unit's state** with zigzag
//!   varints and run-length-collapsed zero runs — consecutive units
//!   share almost all of their warm state and memory pages, so the
//!   store is far smaller than the resident library;
//! * a CRC-32 per record and over the header, so corruption is
//!   localized: the reader yields every intact prefix record and
//!   surfaces [`CkptError::Corrupted`] / [`CkptError::Truncated`] for
//!   the rest instead of failing wholesale.
//!
//! [`CkptWriter`] appends records as a warming pass emits checkpoints
//! (persisting overlaps warming) and finishes with an **index footer**
//! recording every record's offset; [`CkptReader`] streams them back
//! for replay — both plug directly into the producer/consumer pipeline
//! in `smarts-exec`, which is what `smarts --save-checkpoints` /
//! `--from-checkpoints` use. [`MappedStore`] opens the same file
//! zero-copy (memory-mapped, records located via the footer) and hands
//! out borrowed [`FlatCheckpointRef`] records that [`StoreCursor`]s
//! decode lazily — the replay path whose residency is O(one
//! checkpoint per worker) instead of O(units).
//!
//! # Examples
//!
//! ```
//! use smarts_ckpt::{CkptReader, CkptWriter, IsaId, StoreMeta};
//! use smarts_core::{SamplingParams, SmartsSim, Warming};
//! use smarts_uarch::MachineConfig;
//! use smarts_workloads::find;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sim = SmartsSim::new(MachineConfig::eight_way());
//! let bench = find("loopy-1").unwrap().scaled(0.02);
//! let params = SamplingParams::for_sample_size(
//!     bench.approx_len(), 1000, 2000, Warming::Functional, 5, 0)?;
//! let path = std::env::temp_dir().join("smarts-doc-example.ckpt");
//!
//! // Warm once, persisting each unit checkpoint as it is reached.
//! let meta = StoreMeta {
//!     params,
//!     benchmark: bench.name().to_string(),
//!     scale: 0.02,
//!     isa: IsaId::Builtin,
//! };
//! let mut writer = CkptWriter::create(&path, sim.config(), &meta)?;
//! sim.stream_checkpoints(bench.load(), &params, |checkpoint| {
//!     writer.append(&checkpoint).is_ok()
//! })?;
//! let summary = writer.finish()?;
//!
//! // Replay later — any machine sharing the warm geometry may open it.
//! let mut reader = CkptReader::open(&path, sim.config())?;
//! let mut units = 0;
//! while let Some(checkpoint) = reader.next_checkpoint() {
//!     let _checkpoint = checkpoint?;
//!     units += 1;
//! }
//! assert_eq!(units, summary.records);
//! # std::fs::remove_file(&path).ok();
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the mmap module scopes `allow` onto the
// few declared-libc calls it needs; everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod error;
mod flat;
mod lazy;
mod mmap;
mod store;

pub use error::CkptError;
pub use flat::{FlatCheckpoint, FlatCheckpointRef};
pub use lazy::{MappedStore, RecordSpan, StoreCursor};
pub use store::{
    check_fingerprint, read_store_meta, warm_fingerprint, CkptReader, CkptWriter, StoreMeta,
    WriteSummary, FORMAT_VERSION, FORMAT_VERSION_ISA, INDEX_MAGIC, MAGIC, MIN_FORMAT_VERSION,
};

// Re-exported so store consumers can name the frontend recorded in a
// [`StoreMeta`] without depending on `smarts-isa` directly.
pub use smarts_isa::IsaId;

//! Read-only file mapping with a portable owned-buffer fallback.
//!
//! The lazy store reader ([`crate::MappedStore`]) wants the whole file
//! addressable as one `&[u8]` without paying to copy it into the heap:
//! encoded records stay in the page cache and only the pages a replay
//! actually touches become resident. On Unix we get that from `mmap(2)`
//! declared directly (the same no-dependency pattern `smarts-server`
//! uses for `signal(2)`); everywhere else — and whenever the mapping
//! call fails — we fall back to reading the file into an owned buffer,
//! which is semantically identical and merely eager.
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: nothing can write
//! through it, and writes to the underlying file by others are not
//! required to be visible. Stores are immutable after
//! rename-on-commit, so neither property is ever exercised; truncating
//! a store while it is mapped is outside the protocol (on Unix it
//! would raise `SIGBUS`, exactly as for any mapped file).

use std::fs::File;
use std::io::Read;
use std::path::Path;

/// The bytes of one store file, mapped when possible, owned otherwise.
#[derive(Debug)]
pub(crate) struct StoreMap {
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Owned(Vec<u8>),
}

// SAFETY: a `Mapped` backing is a read-only private mapping; the
// pointer is never written through and stays valid until `Drop`
// unmaps it, so sharing the map across threads is sound. The `Owned`
// variant is a plain `Vec<u8>`.
#[allow(unsafe_code)]
#[cfg(unix)]
unsafe impl Send for StoreMap {}
#[allow(unsafe_code)]
#[cfg(unix)]
unsafe impl Sync for StoreMap {}

#[cfg(unix)]
#[allow(unsafe_code)]
mod sys {
    //! The two libc entry points we need, declared directly so the
    //! crate stays free of external dependencies. Constants match the
    //! POSIX values shared by Linux and the BSDs.

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        pub fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
    }
}

impl StoreMap {
    /// Opens `path`, mapping it when `allow_mmap` is set and the
    /// platform cooperates, reading it into memory otherwise. An empty
    /// file yields an empty owned buffer (POSIX forbids zero-length
    /// mappings).
    pub(crate) fn open(path: &Path, allow_mmap: bool) -> std::io::Result<StoreMap> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(unix)]
        if allow_mmap && len > 0 && len <= usize::MAX as u64 {
            if let Some(backing) = map_file(&file, len as usize) {
                return Ok(StoreMap { backing });
            }
        }
        #[cfg(not(unix))]
        let _ = allow_mmap;
        let mut buf = Vec::with_capacity(len.min(1 << 32) as usize);
        file.read_to_end(&mut buf)?;
        Ok(StoreMap {
            backing: Backing::Owned(buf),
        })
    }

    /// The file contents.
    pub(crate) fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { ptr, len } => {
                // SAFETY: `ptr` came from a successful `mmap` of `len`
                // readable bytes and stays mapped until `Drop`.
                #[allow(unsafe_code)]
                unsafe {
                    std::slice::from_raw_parts(*ptr, *len)
                }
            }
            Backing::Owned(buf) => buf,
        }
    }

    /// Whether the file is memory-mapped (false for the owned-buffer
    /// fallback).
    pub(crate) fn is_mapped(&self) -> bool {
        match &self.backing {
            #[cfg(unix)]
            Backing::Mapped { .. } => true,
            Backing::Owned(_) => false,
        }
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
fn map_file(file: &File, len: usize) -> Option<Backing> {
    use std::os::unix::io::AsRawFd;
    // SAFETY: fd is open for reading, len is the file's current size
    // and nonzero; a failed map returns MAP_FAILED (-1), checked below.
    let ptr = unsafe {
        sys::mmap(
            std::ptr::null_mut(),
            len,
            sys::PROT_READ,
            sys::MAP_PRIVATE,
            file.as_raw_fd(),
            0,
        )
    };
    if ptr as isize == -1 || ptr.is_null() {
        return None;
    }
    Some(Backing::Mapped {
        ptr: ptr as *const u8,
        len,
    })
}

impl Drop for StoreMap {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mapped { ptr, len } = self.backing {
            // SAFETY: the pointer/length pair came from the successful
            // `mmap` in `map_file` and is unmapped exactly once here.
            #[allow(unsafe_code)]
            unsafe {
                sys::munmap(ptr as *mut core::ffi::c_void, len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("smarts-mmap-{tag}-{}", std::process::id()));
        p
    }

    #[test]
    fn mapped_and_owned_backings_read_identically() {
        let path = temp_path("basic");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i * 7 + 3) as u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let mapped = StoreMap::open(&path, true).unwrap();
        let owned = StoreMap::open(&path, false).unwrap();
        assert!(!owned.is_mapped());
        assert_eq!(mapped.bytes(), payload.as_slice());
        assert_eq!(owned.bytes(), payload.as_slice());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_bytes() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = StoreMap::open(&path, true).unwrap();
        assert!(map.bytes().is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp_path("threads");
        let payload = vec![0xA5u8; 64 * 1024];
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = std::sync::Arc::new(StoreMap::open(&path, true).unwrap());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let map = std::sync::Arc::clone(&map);
                scope.spawn(move || {
                    assert!(map.bytes().iter().all(|&b| b == 0xA5));
                });
            }
        });
        std::fs::remove_file(&path).unwrap();
    }
}

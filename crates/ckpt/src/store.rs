//! The on-disk store: versioned header, fingerprint, streaming writer
//! and truncation-tolerant reader.
//!
//! File layout (all integers little-endian):
//!
//! ```text
//! header:  magic "SMARTSCK" | version u32 | fingerprint u64
//!          | unit_size u64 | detailed_warming u64 | warming u8
//!          | interval u64 | offset u64 | max_units u8 [+ u64]
//!          | scale f64-bits u64 | name_len u32 | name bytes
//!          | crc32 u32 (over everything above)
//! record:  payload_len u32 | crc32 u32 (over payload) | payload
//! footer:  marker u32 = 0xFFFF_FFFF | count u64 | offset u64 × count
//!          | crc32 u32 (over count + offsets)
//!          | footer_len u64 | magic "SMARTSIX"          (v2 only)
//! ```
//!
//! Records are the delta-encoded flats of [`crate::flat`], each
//! independently CRC-checked so corruption is localized: the reader
//! yields every intact prefix record and then surfaces a typed error
//! for the first bad one.
//!
//! The v2 index footer records the absolute file offset of every
//! record's 8-byte prefix, so a mapped reader ([`crate::MappedStore`])
//! can address records randomly without a sequential parse. The footer
//! is a pure function of the record stream — [`CkptWriter::finish`]
//! derives it from the offsets it tracked while appending — so two
//! stores with identical records are byte-identical files including
//! the footer (the sharded-warm splice invariant carries over). The
//! marker doubles as an end-of-records sentinel for the sequential
//! reader: no legal record has a payload length of `0xFFFF_FFFF`.
//! Version-1 stores (no footer) remain fully readable; readers fall
//! back to a sequential scan whenever the footer is missing or
//! damaged.

use crate::codec::crc32;
use crate::error::CkptError;
use crate::flat::{decode_record, encode_record, FlatCheckpoint};
use smarts_core::{SamplingParams, UnitCheckpoint, Warming};
use smarts_isa::{BuiltinIsa, Isa, IsaId};
use smarts_uarch::{CacheConfig, MachineConfig, PredictorConfig, TlbConfig};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Store magic: the first eight bytes of every checkpoint store.
pub const MAGIC: [u8; 8] = *b"SMARTSCK";

/// On-disk format version this build writes for built-in-frontend
/// stores (v2 = indexed footer). Built-in stores deliberately stay at
/// v2 so their files are byte-identical to pre-frontend builds.
pub const FORMAT_VERSION: u32 = 2;

/// On-disk format version written for non-built-in frontends: identical
/// to v2 plus one [`IsaId`] tag byte after the version field.
pub const FORMAT_VERSION_ISA: u32 = 3;

/// Oldest on-disk format version readers still accept (v1 stores have
/// no index footer and are scanned sequentially).
pub const MIN_FORMAT_VERSION: u32 = 1;

/// Trailing magic closing a v2 store's index footer.
pub const INDEX_MAGIC: [u8; 8] = *b"SMARTSIX";

/// Largest record payload the reader will allocate for; anything bigger
/// is treated as corruption (a real record is a few MiB at most).
pub(crate) const MAX_PAYLOAD: u32 = 1 << 30;

/// First word of the index footer. Deliberately larger than
/// [`MAX_PAYLOAD`], so it can never be confused with a record prefix.
pub(crate) const FOOTER_MARKER: u32 = 0xFFFF_FFFF;

/// Fingerprint schema version, mixed into [`warm_fingerprint`].
/// Deliberately decoupled from [`FORMAT_VERSION`]: the v1 → v2
/// container change (index footer) does not alter what a store's
/// records mean, so fingerprints recorded by v1 stores stay valid.
const FINGERPRINT_VERSION: u64 = 1;

/// SplitMix64 finalizer folded over a running hash — the same mixing
/// the workloads RNG uses, applied as a one-way fingerprint.
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix_cache(h: u64, c: &CacheConfig) -> u64 {
    let h = mix(h, c.size_bytes);
    let h = mix(h, c.assoc as u64);
    let h = mix(h, c.line_bytes);
    mix(h, c.latency)
}

fn mix_tlb(h: u64, t: &TlbConfig) -> u64 {
    let h = mix(h, t.entries as u64);
    let h = mix(h, t.assoc as u64);
    let h = mix(h, t.page_bytes);
    mix(h, t.miss_penalty)
}

fn mix_bpred(h: u64, b: &PredictorConfig) -> u64 {
    let h = mix(h, b.bimodal_entries as u64);
    let h = mix(h, b.gshare_entries as u64);
    let h = mix(h, b.meta_entries as u64);
    let h = mix(h, b.btb_entries as u64);
    let h = mix(h, b.btb_assoc as u64);
    let h = mix(h, b.ras_entries as u64);
    let h = mix(h, b.mispred_penalty);
    mix(h, b.predictions_per_cycle as u64)
}

/// Fingerprint of a machine's functional-warming geometry: exactly the
/// fields [`smarts_core::CheckpointLibrary::compatible_with`] compares
/// (caches, TLBs, predictor, memory latency). Machines that differ only
/// in pipeline-core parameters (widths, window, FUs) fingerprint
/// identically — that is the warm-once/replay-many-configs contract.
pub fn warm_fingerprint(cfg: &MachineConfig) -> u64 {
    let h = mix(0x534D_4152_5453_434B, FINGERPRINT_VERSION); // "SMARTSCK"
    let h = mix_cache(h, &cfg.l1i);
    let h = mix_cache(h, &cfg.l1d);
    let h = mix_cache(h, &cfg.l2);
    let h = mix_tlb(h, &cfg.itlb);
    let h = mix_tlb(h, &cfg.dtlb);
    let h = mix_bpred(h, &cfg.bpred);
    mix(h, cfg.mem_latency)
}

/// Checks a store's recorded warm-geometry fingerprint against the
/// machine that wants to replay it — the one shared gate used by
/// [`CkptReader::open`] and by callers that manage stores without
/// opening them (the `smarts-server` store manager).
///
/// # Errors
///
/// Returns [`CkptError::FingerprintMismatch`] when `cfg`'s warming
/// geometry differs from `found`.
pub fn check_fingerprint(cfg: &MachineConfig, found: u64) -> Result<(), CkptError> {
    let expected = warm_fingerprint(cfg);
    if found != expected {
        return Err(CkptError::FingerprintMismatch { expected, found });
    }
    Ok(())
}

/// Everything a replay needs to know about how the store was produced:
/// the sampling design plus the benchmark identity, so
/// `--from-checkpoints` needs no `--bench`/`--scale`/`--n` repetition.
#[derive(Debug, Clone, PartialEq)]
pub struct StoreMeta {
    /// The sampling design the warming pass ran with.
    pub params: SamplingParams,
    /// Benchmark name (e.g. `"hashp-2"`), or the trace path for the
    /// trace frontend.
    pub benchmark: String,
    /// Scale factor the benchmark was loaded with.
    pub scale: f64,
    /// The instruction-set frontend the store's checkpoints were
    /// produced under. Replaying under a different frontend is refused
    /// with [`CkptError::IsaMismatch`].
    pub isa: IsaId,
}

/// Salt mixed ahead of the [`IsaId`] tag in non-built-in store
/// fingerprints ("ISA" in ASCII), so an ISA tag can never collide with
/// an adjacent benchmark-name byte fold.
const FINGERPRINT_ISA_SALT: u64 = 0x0049_5341;

impl StoreMeta {
    /// Full store-identity fingerprint: the warm-geometry
    /// [`warm_fingerprint`] folded with the benchmark name, scale, and
    /// every sampling-design field. Two stores fingerprint identically
    /// exactly when one warming pass could serve both — this is the key
    /// the `smarts-server` store manager maps to a store path and the
    /// results cache keys on.
    pub fn fingerprint(&self, cfg: &MachineConfig) -> u64 {
        let h = warm_fingerprint(cfg);
        // Built-in stores skip the ISA fold entirely so every
        // fingerprint recorded by a pre-frontend (v1/v2) build stays
        // valid; other frontends mix their tag so stores from different
        // frontends can never share an identity.
        let h = match self.isa {
            IsaId::Builtin => h,
            other => mix(mix(h, FINGERPRINT_ISA_SALT), other.tag() as u64),
        };
        let h = self
            .benchmark
            .as_bytes()
            .iter()
            .fold(h, |h, &b| mix(h, b as u64));
        let h = mix(h, self.benchmark.len() as u64);
        let h = mix(h, self.scale.to_bits());
        let h = mix(h, self.params.unit_size);
        let h = mix(h, self.params.detailed_warming);
        let h = mix(
            h,
            match self.params.warming {
                Warming::None => 0,
                Warming::Functional => 1,
            },
        );
        let h = mix(h, self.params.interval);
        let h = mix(h, self.params.offset);
        match self.params.max_units {
            None => mix(h, u64::MAX),
            Some(max) => mix(mix(h, 1), max),
        }
    }
}

/// Reads just the header of a store: its warm-geometry fingerprint and
/// self-describing [`StoreMeta`], without decoding any record and
/// without requiring a machine to check against. This is how a store
/// directory can be inventoried (or a candidate store validated) in
/// O(header) instead of O(replay).
///
/// # Errors
///
/// As for [`CkptReader::open`] minus the fingerprint check:
/// [`CkptError::BadMagic`], [`CkptError::UnsupportedVersion`],
/// [`CkptError::HeaderCorrupted`], or [`CkptError::Io`].
pub fn read_store_meta(path: impl AsRef<Path>) -> Result<(u64, StoreMeta), CkptError> {
    let mut file = BufReader::new(File::open(path)?);
    let (fingerprint, meta, _version) = decode_header(&mut file)?;
    Ok((fingerprint, meta))
}

pub(crate) fn encode_header(fingerprint: u64, meta: &StoreMeta) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    // The version is derived from the frontend: built-in stores keep
    // writing v2 byte-identically; other frontends write v3, which
    // inserts exactly one ISA tag byte after the version field.
    match meta.isa {
        IsaId::Builtin => out.extend_from_slice(&FORMAT_VERSION.to_le_bytes()),
        other => {
            out.extend_from_slice(&FORMAT_VERSION_ISA.to_le_bytes());
            out.push(other.tag());
        }
    }
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&meta.params.unit_size.to_le_bytes());
    out.extend_from_slice(&meta.params.detailed_warming.to_le_bytes());
    out.push(match meta.params.warming {
        Warming::None => 0,
        Warming::Functional => 1,
    });
    out.extend_from_slice(&meta.params.interval.to_le_bytes());
    out.extend_from_slice(&meta.params.offset.to_le_bytes());
    match meta.params.max_units {
        None => out.push(0),
        Some(max) => {
            out.push(1);
            out.extend_from_slice(&max.to_le_bytes());
        }
    }
    out.extend_from_slice(&meta.scale.to_bits().to_le_bytes());
    let name = meta.benchmark.as_bytes();
    out.extend_from_slice(&(name.len() as u32).to_le_bytes());
    out.extend_from_slice(name);
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Incremental header parser: reads fields while accumulating the raw
/// bytes so the trailing CRC can be checked over exactly what was read.
struct HeaderReader<'a, R: Read> {
    inner: &'a mut R,
    raw: Vec<u8>,
}

impl<'a, R: Read> HeaderReader<'a, R> {
    fn take<const N: usize>(&mut self) -> Result<[u8; N], CkptError> {
        let mut buf = [0u8; N];
        self.inner
            .read_exact(&mut buf)
            .map_err(|_| CkptError::HeaderCorrupted)?;
        self.raw.extend_from_slice(&buf);
        Ok(buf)
    }

    fn take_vec(&mut self, n: usize) -> Result<Vec<u8>, CkptError> {
        let mut buf = vec![0u8; n];
        self.inner
            .read_exact(&mut buf)
            .map_err(|_| CkptError::HeaderCorrupted)?;
        self.raw.extend_from_slice(&buf);
        Ok(buf)
    }

    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }
}

pub(crate) fn decode_header(reader: &mut impl Read) -> Result<(u64, StoreMeta, u32), CkptError> {
    let mut h = HeaderReader {
        inner: reader,
        raw: Vec::new(),
    };
    let magic = h.take::<8>().map_err(|_| CkptError::BadMagic)?;
    if magic != MAGIC {
        return Err(CkptError::BadMagic);
    }
    let version = h.u32()?;
    if !(MIN_FORMAT_VERSION..=FORMAT_VERSION_ISA).contains(&version) {
        return Err(CkptError::UnsupportedVersion(version));
    }
    let isa = if version >= FORMAT_VERSION_ISA {
        IsaId::from_tag(h.u8()?).ok_or(CkptError::HeaderCorrupted)?
    } else {
        // v1/v2 stores predate frontends and are built-in by
        // definition.
        IsaId::Builtin
    };
    let fingerprint = h.u64()?;
    let unit_size = h.u64()?;
    let detailed_warming = h.u64()?;
    let warming = match h.u8()? {
        0 => Warming::None,
        1 => Warming::Functional,
        _ => return Err(CkptError::HeaderCorrupted),
    };
    let interval = h.u64()?;
    let offset = h.u64()?;
    let max_units = match h.u8()? {
        0 => None,
        1 => Some(h.u64()?),
        _ => return Err(CkptError::HeaderCorrupted),
    };
    let scale = f64::from_bits(h.u64()?);
    let name_len = h.u32()?;
    if name_len > 4096 {
        return Err(CkptError::HeaderCorrupted);
    }
    let name_bytes = h.take_vec(name_len as usize)?;
    let benchmark = String::from_utf8(name_bytes).map_err(|_| CkptError::HeaderCorrupted)?;
    let expected_crc = crc32(&h.raw);
    let stored_crc = u32::from_le_bytes(h.take::<4>()?);
    if stored_crc != expected_crc {
        return Err(CkptError::HeaderCorrupted);
    }
    Ok((
        fingerprint,
        StoreMeta {
            params: SamplingParams {
                unit_size,
                detailed_warming,
                warming,
                interval,
                offset,
                max_units,
            },
            benchmark,
            scale,
            isa,
        },
        version,
    ))
}

/// Encodes the v2 index footer for the given record-prefix offsets.
/// A pure function of the record stream, so stores with identical
/// records carry identical footers.
pub(crate) fn encode_footer(offsets: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + 8 + 8 * offsets.len() + 4 + 16);
    out.extend_from_slice(&FOOTER_MARKER.to_le_bytes());
    out.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
    for &offset in offsets {
        out.extend_from_slice(&offset.to_le_bytes());
    }
    // CRC over count + offsets (everything after the marker).
    let crc = crc32(&out[4..]);
    out.extend_from_slice(&crc.to_le_bytes());
    let footer_len = out.len() as u64; // marker through crc, inclusive
    out.extend_from_slice(&footer_len.to_le_bytes());
    out.extend_from_slice(&INDEX_MAGIC);
    out
}

/// Summary of a completed write pass.
#[derive(Debug, Clone, Copy)]
pub struct WriteSummary {
    /// Records written.
    pub records: u64,
    /// Total file bytes (header, all records, and the index footer).
    pub bytes: u64,
}

/// Streaming checkpoint-store writer: appends each checkpoint as a
/// delta-encoded, CRC-protected record the moment the warming pass
/// emits it, so persisting overlaps warming instead of following it.
pub struct CkptWriter {
    file: BufWriter<File>,
    fingerprint: u64,
    isa: IsaId,
    prev: Option<FlatCheckpoint>,
    records: u64,
    bytes: u64,
    offsets: Vec<u64>,
}

impl CkptWriter {
    /// Creates (truncating) a store at `path` for a machine's warming
    /// geometry and a sampling design.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] when the file cannot be created or the
    /// header cannot be written.
    pub fn create(
        path: impl AsRef<Path>,
        cfg: &MachineConfig,
        meta: &StoreMeta,
    ) -> Result<Self, CkptError> {
        let mut file = BufWriter::new(File::create(path)?);
        let fingerprint = warm_fingerprint(cfg);
        let header = encode_header(fingerprint, meta);
        file.write_all(&header)?;
        Ok(CkptWriter {
            file,
            fingerprint,
            isa: meta.isa,
            prev: None,
            records: 0,
            bytes: header.len() as u64,
            offsets: Vec::new(),
        })
    }

    /// The warm-geometry fingerprint written into the store header.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Appends one checkpoint, delta-encoded against the previously
    /// appended one. Checkpoints must be appended in stream order (the
    /// order the warming pass emits them) — that is what the reader
    /// decodes against.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] on a write failure, or
    /// [`CkptError::IsaMismatch`] when the checkpoint's frontend differs
    /// from the one the store was created for.
    pub fn append<I: Isa>(&mut self, checkpoint: &UnitCheckpoint<I>) -> Result<(), CkptError> {
        if I::ID != self.isa {
            return Err(CkptError::IsaMismatch {
                expected: I::ID,
                found: self.isa,
            });
        }
        self.append_flat(FlatCheckpoint::flatten(checkpoint))
    }

    /// Appends one already-flattened checkpoint (see [`CkptWriter::append`]).
    /// This is the splice seam for sharded warming: a merge pass streams
    /// flats decoded from per-shard segment stores straight into the
    /// final store, and because [`crate::flat::encode_record`] is a pure
    /// function of `(current flat, previous flat)`, re-encoding a decoded
    /// chain reproduces the single-producer store byte-for-byte.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] when the write fails.
    pub fn append_flat(&mut self, flat: FlatCheckpoint) -> Result<(), CkptError> {
        let payload = encode_record(&flat, self.prev.as_ref());
        let crc = crc32(&payload);
        self.file
            .write_all(&(u32::try_from(payload.len()).expect("record fits u32")).to_le_bytes())?;
        self.file.write_all(&crc.to_le_bytes())?;
        self.file.write_all(&payload)?;
        self.offsets.push(self.bytes);
        self.bytes += 8 + payload.len() as u64;
        self.records += 1;
        self.prev = Some(flat);
        Ok(())
    }

    /// Records written so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Writes the index footer, flushes, and closes the store. The
    /// footer is derived purely from the record offsets tracked while
    /// appending, so identical record streams finish to byte-identical
    /// files.
    ///
    /// # Errors
    ///
    /// Returns [`CkptError::Io`] when the footer write or final flush
    /// fails.
    pub fn finish(mut self) -> Result<WriteSummary, CkptError> {
        let footer = encode_footer(&self.offsets);
        self.file.write_all(&footer)?;
        self.bytes += footer.len() as u64;
        self.file.flush()?;
        Ok(WriteSummary {
            records: self.records,
            bytes: self.bytes,
        })
    }
}

/// Streaming checkpoint-store reader.
///
/// Opening validates the header (magic, version, CRC) and the warming
/// geometry fingerprint against the replaying machine — a store warmed
/// for different caches/TLBs/predictor is rejected with
/// [`CkptError::FingerprintMismatch`] before any record is read.
///
/// Reading is truncation-tolerant: every intact prefix record is
/// yielded, and the first damaged or torn record surfaces as a typed
/// error ([`CkptError::Corrupted`] / [`CkptError::Truncated`]), after
/// which the stream ends.
pub struct CkptReader {
    file: BufReader<File>,
    meta: StoreMeta,
    fingerprint: u64,
    version: u32,
    cfg: MachineConfig,
    prev: Option<FlatCheckpoint>,
    record: u64,
    done: bool,
    /// Absolute offset of the next unread byte (= next record prefix).
    offset: u64,
    /// Offsets of the records decoded so far, for validating the v2
    /// footer byte-for-byte when the end marker is reached.
    offsets: Vec<u64>,
}

impl CkptReader {
    /// Opens a store for replay on machine `cfg`.
    ///
    /// # Errors
    ///
    /// [`CkptError::BadMagic`], [`CkptError::UnsupportedVersion`], or
    /// [`CkptError::HeaderCorrupted`] when the header does not parse;
    /// [`CkptError::FingerprintMismatch`] when `cfg`'s warming geometry
    /// differs from the one the store was built with; [`CkptError::Io`]
    /// on filesystem errors.
    pub fn open(path: impl AsRef<Path>, cfg: &MachineConfig) -> Result<Self, CkptError> {
        let mut file = BufReader::new(File::open(path)?);
        let (found, meta, version) = decode_header(&mut file)?;
        check_fingerprint(cfg, found)?;
        // The header length is a pure function of its fields (the
        // version value changes, its width does not), so re-encoding
        // recovers the offset the stream is now at.
        let header_len = encode_header(found, &meta).len() as u64;
        Ok(CkptReader {
            file,
            meta,
            fingerprint: found,
            version,
            cfg: cfg.clone(),
            prev: None,
            record: 0,
            done: false,
            offset: header_len,
            offsets: Vec::new(),
        })
    }

    /// The store's sampling design and benchmark identity.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// The warm-geometry fingerprint recorded in the store header, so
    /// callers can compare stores without reopening them.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Intact records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.record
    }

    /// Reads `buf.len()` bytes; `Ok(false)` on clean EOF at offset 0,
    /// `Err` (typed as truncation) on a partial read.
    fn read_exact_or_eof(&mut self, buf: &mut [u8]) -> Result<bool, CkptError> {
        let mut filled = 0;
        while filled < buf.len() {
            match self.file.read(&mut buf[filled..]) {
                Ok(0) if filled == 0 => return Ok(false),
                Ok(0) => {
                    return Err(CkptError::Truncated {
                        record: self.record,
                        recovered: self.record,
                    })
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(true)
    }

    /// Decodes the next checkpoint. `None` after the last record (or
    /// after any error — errors are terminal for the stream). Intact
    /// records before a tear or a corrupted record have all been
    /// yielded by earlier calls.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next_checkpoint(&mut self) -> Option<Result<UnitCheckpoint, CkptError>> {
        self.next_checkpoint_isa::<BuiltinIsa>()
    }

    /// Decodes the next checkpoint for frontend `I`. A store written by
    /// a different frontend is refused with [`CkptError::IsaMismatch`]
    /// before any record is decoded — the typed alternative to letting
    /// the wrong frontend's state words surface as a decode failure.
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next_checkpoint_isa<I: Isa>(&mut self) -> Option<Result<UnitCheckpoint<I>, CkptError>> {
        if self.done {
            return None;
        }
        if self.meta.isa != I::ID {
            self.done = true;
            return Some(Err(CkptError::IsaMismatch {
                expected: I::ID,
                found: self.meta.isa,
            }));
        }
        let flat = match self.next_flat()? {
            Ok(flat) => flat,
            Err(e) => return Some(Err(e)),
        };
        match flat.rebuild_isa::<I>(&self.cfg) {
            Ok(checkpoint) => Some(Ok(checkpoint)),
            Err(detail) => {
                self.done = true;
                Some(Err(CkptError::Corrupted {
                    // `read_one` already counted this record.
                    record: self.record - 1,
                    detail,
                }))
            }
        }
    }

    /// Decodes the next record to its flattened form without rebuilding
    /// live state — the sharded-warm stitch path, which compares and
    /// splices flats directly. Same streaming/error contract as
    /// [`CkptReader::next_checkpoint`].
    #[allow(clippy::should_implement_trait)] // fallible, not an Iterator
    pub fn next_flat(&mut self) -> Option<Result<FlatCheckpoint, CkptError>> {
        if self.done {
            return None;
        }
        let result = self.read_one();
        match &result {
            Some(Ok(_)) => {}
            _ => self.done = true,
        }
        result
    }

    fn read_one(&mut self) -> Option<Result<FlatCheckpoint, CkptError>> {
        let mut prefix = [0u8; 8];
        match self.read_exact_or_eof(&mut prefix) {
            Ok(false) => {
                if self.version >= 2 {
                    // A v2 store must end with its index footer; a
                    // clean EOF at a record boundary means the tail
                    // was cut off. Every record is intact, so this is
                    // damage without data loss.
                    return Some(Err(CkptError::Corrupted {
                        record: self.record,
                        detail: "index footer missing",
                    }));
                }
                return None; // clean end of a v1 store
            }
            Ok(true) => {}
            Err(e) => return Some(Err(e)),
        }
        let payload_len = u32::from_le_bytes(prefix[..4].try_into().expect("4 bytes"));
        let stored_crc = u32::from_le_bytes(prefix[4..].try_into().expect("4 bytes"));
        if self.version >= 2 && payload_len == FOOTER_MARKER {
            return self.check_footer(prefix[4..].try_into().expect("4 bytes"));
        }
        if payload_len > MAX_PAYLOAD {
            return Some(Err(CkptError::Corrupted {
                record: self.record,
                detail: "implausible record length",
            }));
        }
        let mut payload = vec![0u8; payload_len as usize];
        match self.read_exact_or_eof(&mut payload) {
            Ok(true) => {}
            // A zero-length tail read or partial payload is a tear
            // either way.
            Ok(false) | Err(CkptError::Truncated { .. }) => {
                return Some(Err(CkptError::Truncated {
                    record: self.record,
                    recovered: self.record,
                }))
            }
            Err(e) => return Some(Err(e)),
        }
        if crc32(&payload) != stored_crc {
            return Some(Err(CkptError::Corrupted {
                record: self.record,
                detail: "CRC mismatch",
            }));
        }
        let flat = match decode_record(&payload, self.prev.as_ref()) {
            Ok(flat) => flat,
            Err(detail) => {
                return Some(Err(CkptError::Corrupted {
                    record: self.record,
                    detail,
                }))
            }
        };
        self.prev = Some(flat.clone());
        self.offsets.push(self.offset);
        self.offset += 8 + payload_len as u64;
        self.record += 1;
        Some(Ok(flat))
    }

    /// Reached the footer marker: the record stream is over. The
    /// expected footer is a pure function of the offsets tracked while
    /// reading, so one byte-compare validates marker, count, offsets,
    /// CRC, length, and trailing magic at once. `marker_tail` is the
    /// four bytes read after the marker (the low half of `count`).
    fn check_footer(&mut self, marker_tail: [u8; 4]) -> Option<Result<FlatCheckpoint, CkptError>> {
        let damaged = Some(Err(CkptError::Corrupted {
            record: self.record,
            detail: "index footer damaged",
        }));
        let expected = encode_footer(&self.offsets);
        let mut rest = Vec::with_capacity(expected.len().saturating_sub(8));
        if self.file.read_to_end(&mut rest).is_err() {
            return damaged;
        }
        if marker_tail == expected[4..8] && rest == expected[8..] {
            None // clean, fully indexed end of store
        } else {
            damaged
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_ignores_pipeline_core_but_not_warm_geometry() {
        let base = MachineConfig::eight_way();
        let mut narrow = base.clone();
        narrow.issue_width = 2;
        narrow.fetch_width = 2;
        narrow.decode_width = 2;
        narrow.commit_width = 2;
        narrow.ruu_size = 32;
        assert_eq!(warm_fingerprint(&base), warm_fingerprint(&narrow));

        let sixteen = MachineConfig::sixteen_way();
        assert_ne!(warm_fingerprint(&base), warm_fingerprint(&sixteen));

        let mut bigger_l2 = base.clone();
        bigger_l2.l2.size_bytes *= 2;
        assert_ne!(warm_fingerprint(&base), warm_fingerprint(&bigger_l2));
    }

    #[test]
    fn check_fingerprint_gates_on_warm_geometry() {
        let cfg = MachineConfig::eight_way();
        assert!(check_fingerprint(&cfg, warm_fingerprint(&cfg)).is_ok());
        let err = check_fingerprint(&cfg, warm_fingerprint(&cfg) ^ 1).unwrap_err();
        assert!(matches!(err, CkptError::FingerprintMismatch { .. }));
    }

    #[test]
    fn store_meta_fingerprint_covers_every_identity_field() {
        let cfg = MachineConfig::eight_way();
        let meta = StoreMeta {
            params: SamplingParams {
                unit_size: 1000,
                detailed_warming: 2000,
                warming: Warming::Functional,
                interval: 37,
                offset: 3,
                max_units: None,
            },
            benchmark: "hashp-2".to_string(),
            scale: 0.25,
            isa: IsaId::Builtin,
        };
        let base = meta.fingerprint(&cfg);
        assert_eq!(base, meta.fingerprint(&cfg), "fingerprint is deterministic");

        let mut other_bench = meta.clone();
        other_bench.benchmark = "hashp-3".to_string();
        assert_ne!(base, other_bench.fingerprint(&cfg));

        let mut other_scale = meta.clone();
        other_scale.scale = 0.5;
        assert_ne!(base, other_scale.fingerprint(&cfg));

        let mut other_interval = meta.clone();
        other_interval.params.interval = 38;
        assert_ne!(base, other_interval.fingerprint(&cfg));

        let mut capped = meta.clone();
        capped.params.max_units = Some(12);
        assert_ne!(base, capped.fingerprint(&cfg));

        assert_ne!(base, meta.fingerprint(&MachineConfig::sixteen_way()));

        // Pipeline-core-only differences share the fingerprint — the
        // warm-once/replay-many-configs contract carries over.
        let mut narrow = cfg.clone();
        narrow.issue_width = 2;
        assert_eq!(base, meta.fingerprint(&narrow));
    }

    #[test]
    fn read_store_meta_peeks_the_header_without_a_machine() {
        let cfg = MachineConfig::eight_way();
        let meta = StoreMeta {
            params: SamplingParams {
                unit_size: 500,
                detailed_warming: 1000,
                warming: Warming::Functional,
                interval: 11,
                offset: 0,
                max_units: None,
            },
            benchmark: "loopy-1".to_string(),
            scale: 0.1,
            isa: IsaId::Builtin,
        };
        let path = std::env::temp_dir().join(format!(
            "smarts-ckpt-peek-{}-{:x}.ckpt",
            std::process::id(),
            meta.fingerprint(&cfg)
        ));
        let writer = CkptWriter::create(&path, &cfg, &meta).unwrap();
        assert_eq!(writer.fingerprint(), warm_fingerprint(&cfg));
        writer.finish().unwrap();
        let (found, peeked) = read_store_meta(&path).unwrap();
        assert_eq!(found, warm_fingerprint(&cfg));
        assert_eq!(peeked, meta);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_round_trips() {
        let meta = StoreMeta {
            params: SamplingParams {
                unit_size: 1000,
                detailed_warming: 2000,
                warming: Warming::Functional,
                interval: 37,
                offset: 3,
                max_units: Some(12),
            },
            benchmark: "hashp-2".to_string(),
            scale: 0.25,
            isa: IsaId::Builtin,
        };
        let bytes = encode_header(0xDEAD_BEEF, &meta);
        let mut cursor = &bytes[..];
        let (fp, decoded, version) = decode_header(&mut cursor).unwrap();
        assert_eq!(fp, 0xDEAD_BEEF);
        assert_eq!(decoded, meta);
        assert_eq!(version, FORMAT_VERSION);
    }

    #[test]
    fn footer_is_a_pure_function_of_the_offsets() {
        let offsets = [100u64, 250, 4000];
        let a = encode_footer(&offsets);
        let b = encode_footer(&offsets);
        assert_eq!(a, b);
        assert_eq!(&a[..4], &FOOTER_MARKER.to_le_bytes());
        assert_eq!(&a[a.len() - 8..], &INDEX_MAGIC);
        let footer_len =
            u64::from_le_bytes(a[a.len() - 16..a.len() - 8].try_into().unwrap()) as usize;
        assert_eq!(footer_len, a.len() - 16);
        assert_ne!(a, encode_footer(&[100u64, 250]));
    }

    #[test]
    fn v3_header_round_trips_the_isa_tag() {
        let mut meta = StoreMeta {
            params: SamplingParams {
                unit_size: 1000,
                detailed_warming: 2000,
                warming: Warming::Functional,
                interval: 37,
                offset: 3,
                max_units: Some(12),
            },
            benchmark: "hashp-2".to_string(),
            scale: 0.25,
            isa: IsaId::Risc,
        };
        for isa in [IsaId::Risc, IsaId::Trace] {
            meta.isa = isa;
            let bytes = encode_header(0xDEAD_BEEF, &meta);
            let mut cursor = &bytes[..];
            let (fp, decoded, version) = decode_header(&mut cursor).unwrap();
            assert_eq!(fp, 0xDEAD_BEEF);
            assert_eq!(decoded, meta);
            assert_eq!(version, FORMAT_VERSION_ISA);
        }

        // The built-in frontend keeps writing v2 headers byte-for-byte:
        // a v3 header is exactly one ISA tag byte longer.
        meta.isa = IsaId::Builtin;
        let builtin = encode_header(0xDEAD_BEEF, &meta);
        meta.isa = IsaId::Risc;
        let risc = encode_header(0xDEAD_BEEF, &meta);
        assert_eq!(risc.len(), builtin.len() + 1);
    }

    #[test]
    fn fingerprint_folds_the_frontend() {
        let cfg = MachineConfig::eight_way();
        let mut meta = StoreMeta {
            params: SamplingParams {
                unit_size: 1000,
                detailed_warming: 2000,
                warming: Warming::Functional,
                interval: 37,
                offset: 3,
                max_units: None,
            },
            benchmark: "loopy-1".to_string(),
            scale: 0.5,
            isa: IsaId::Builtin,
        };
        let builtin = meta.fingerprint(&cfg);
        meta.isa = IsaId::Risc;
        let risc = meta.fingerprint(&cfg);
        meta.isa = IsaId::Trace;
        let trace = meta.fingerprint(&cfg);
        assert_ne!(builtin, risc);
        assert_ne!(builtin, trace);
        assert_ne!(risc, trace);
    }

    #[test]
    fn header_crc_catches_flips() {
        let meta = StoreMeta {
            params: SamplingParams {
                unit_size: 1000,
                detailed_warming: 2000,
                warming: Warming::None,
                interval: 5,
                offset: 0,
                max_units: None,
            },
            benchmark: "loopy-1".to_string(),
            scale: 1.0,
            isa: IsaId::Builtin,
        };
        let mut bytes = encode_header(7, &meta);
        let flip = bytes.len() / 2;
        bytes[flip] ^= 0x40;
        let mut cursor = &bytes[..];
        assert!(matches!(
            decode_header(&mut cursor),
            Err(CkptError::HeaderCorrupted)
        ));
    }
}

//! The zero-copy store reader: a memory-mapped store addressed by
//! record index, decoding lazily.
//!
//! [`CkptReader`](crate::CkptReader) materializes every checkpoint it
//! streams past; holding a whole store resident that way costs
//! O(units) RAM. A [`MappedStore`] instead keeps only the *encoded*
//! bytes addressable — via `mmap(2)` they are not even resident until
//! touched — and hands out [`FlatCheckpointRef`] views that borrow
//! straight from the map. Decoding happens per cursor: a
//! [`StoreCursor`] rolls one [`FlatCheckpoint`] forward through the
//! delta chain, so a replay's peak residency is O(one checkpoint) per
//! worker plus the file's page cache, instead of O(units).
//!
//! Opening parses the header and locates every record frame — from the
//! v2 index footer when it is intact (O(footer) work, no record bytes
//! touched), by sequential frame scan otherwise (v1 stores, or a v2
//! store whose footer is damaged). A damaged store still exposes its
//! intact prefix; the damage itself is retained and reported through
//! [`MappedStore::damage`], mirroring the truncation-tolerant contract
//! of the streaming reader. Record CRCs are *not* checked at open:
//! each record is verified on first touch, once, with the result
//! memoized across all cursors and threads.

use crate::error::CkptError;
use crate::flat::{FlatCheckpoint, FlatCheckpointRef};
use crate::mmap::StoreMap;
use crate::store::{
    check_fingerprint, decode_header, encode_footer, encode_header, StoreMeta, FOOTER_MARKER,
    INDEX_MAGIC, MAX_PAYLOAD,
};
use smarts_uarch::MachineConfig;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// One record's frame inside the file: payload span plus its stored
/// CRC.
#[derive(Debug, Clone, Copy)]
struct RecordFrame {
    payload_start: usize,
    payload_len: u32,
    crc: u32,
}

/// A record's on-disk placement, as reported by
/// [`MappedStore::record_span`] — the inventory view (`smarts
/// ckpt-info --json`) of one frame without decoding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordSpan {
    /// File offset of the frame's 8-byte length+CRC prefix.
    pub offset: u64,
    /// Payload bytes following the prefix (the frame occupies
    /// `offset .. offset + 8 + payload_bytes`).
    pub payload_bytes: u64,
    /// The CRC32 stored in the frame prefix (not re-verified here).
    pub crc: u32,
}

/// A checkpoint store opened for zero-copy random access. See the
/// module docs for the residency model. Shareable across threads
/// (`&MappedStore` is `Sync`); every concurrent reader shares one
/// mapping and one first-touch CRC memo.
#[derive(Debug)]
pub struct MappedStore {
    map: StoreMap,
    fingerprint: u64,
    meta: StoreMeta,
    version: u32,
    header_len: usize,
    frames: Vec<RecordFrame>,
    index_present: bool,
    damage: Option<CkptError>,
    /// First-touch CRC memo: `checked[i]` is set once record `i` has
    /// passed its CRC, after which no reader re-hashes it.
    checked: Vec<AtomicBool>,
}

impl MappedStore {
    /// Opens a store for replay on machine `cfg`, memory-mapping it
    /// when the platform allows (owned-buffer fallback otherwise).
    ///
    /// # Errors
    ///
    /// As for [`CkptReader::open`](crate::CkptReader::open): header
    /// parse errors, [`CkptError::FingerprintMismatch`] for the wrong
    /// warm geometry, [`CkptError::Io`]. Record damage is *not* an
    /// open error — it is retained and reported by
    /// [`MappedStore::damage`].
    pub fn open(path: impl AsRef<Path>, cfg: &MachineConfig) -> Result<Self, CkptError> {
        let store = Self::open_unchecked_impl(path.as_ref(), true)?;
        check_fingerprint(cfg, store.fingerprint)?;
        Ok(store)
    }

    /// Opens like [`MappedStore::open`] but never memory-maps: the
    /// whole file is read into an owned buffer. Decode behaviour is
    /// identical; this is the portable fallback path, exposed so tests
    /// (and platforms without `mmap`) can pin it.
    pub fn open_buffered(path: impl AsRef<Path>, cfg: &MachineConfig) -> Result<Self, CkptError> {
        let store = Self::open_unchecked_impl(path.as_ref(), false)?;
        check_fingerprint(cfg, store.fingerprint)?;
        Ok(store)
    }

    /// Opens a store without a machine to check the fingerprint
    /// against — the inventory path (`smarts ckpt-info`), which must
    /// work on any store regardless of the local geometry.
    ///
    /// # Errors
    ///
    /// Header parse errors and [`CkptError::Io`] only.
    pub fn open_unchecked(path: impl AsRef<Path>) -> Result<Self, CkptError> {
        Self::open_unchecked_impl(path.as_ref(), true)
    }

    fn open_unchecked_impl(path: &Path, allow_mmap: bool) -> Result<Self, CkptError> {
        let map = StoreMap::open(path, allow_mmap)?;
        let bytes = map.bytes();
        let (fingerprint, meta, version) = decode_header(&mut &bytes[..])?;
        // Header length is a pure function of its fields; re-encoding
        // recovers where the record region starts.
        let header_len = encode_header(fingerprint, &meta).len();
        let mut store = MappedStore {
            map,
            fingerprint,
            meta,
            version,
            header_len,
            frames: Vec::new(),
            index_present: false,
            damage: None,
            checked: Vec::new(),
        };
        store.locate_records();
        store.checked = (0..store.frames.len())
            .map(|_| AtomicBool::new(false))
            .collect();
        Ok(store)
    }

    /// Locates every record frame: via the index footer when intact,
    /// by sequential scan otherwise.
    fn locate_records(&mut self) {
        if self.version >= 2 {
            if let Some(frames) = self.frames_from_footer() {
                self.frames = frames;
                self.index_present = true;
                return;
            }
        }
        self.scan_records();
    }

    /// Validates the index footer end-to-end and converts it to record
    /// frames. Every check cross-validates the offsets against the
    /// actual frame geometry (contiguity from the header to the footer
    /// start), so a footer that passes here describes exactly the
    /// record stream a sequential scan would find.
    fn frames_from_footer(&self) -> Option<Vec<RecordFrame>> {
        let bytes = self.map.bytes();
        let n = bytes.len();
        // Smallest footer: marker + count + crc + footer_len + magic.
        if n < self.header_len + 32 || bytes[n - 8..] != INDEX_MAGIC {
            return None;
        }
        let footer_len = u64::from_le_bytes(bytes[n - 16..n - 8].try_into().ok()?) as usize;
        let footer_start = (n - 16).checked_sub(footer_len)?;
        if footer_start < self.header_len {
            return None;
        }
        let footer = &bytes[footer_start..n - 16];
        if footer.len() < 16 || footer[..4] != FOOTER_MARKER.to_le_bytes() {
            return None;
        }
        let count = u64::from_le_bytes(footer[4..12].try_into().ok()?);
        if footer.len() as u64 != 16 + 8 * count {
            return None;
        }
        let stored_crc = u32::from_le_bytes(footer[footer.len() - 4..].try_into().ok()?);
        if crate::codec::crc32(&footer[4..footer.len() - 4]) != stored_crc {
            return None;
        }
        let mut frames = Vec::with_capacity(count as usize);
        let mut expected_offset = self.header_len;
        for k in 0..count as usize {
            let at = 12 + 8 * k;
            let offset = u64::from_le_bytes(footer[at..at + 8].try_into().ok()?);
            if offset != expected_offset as u64 {
                return None;
            }
            let prefix_end = expected_offset.checked_add(8)?;
            if prefix_end > footer_start {
                return None;
            }
            let payload_len = u32::from_le_bytes(
                bytes[expected_offset..expected_offset + 4]
                    .try_into()
                    .ok()?,
            );
            let crc = u32::from_le_bytes(
                bytes[expected_offset + 4..expected_offset + 8]
                    .try_into()
                    .ok()?,
            );
            if payload_len > MAX_PAYLOAD {
                return None;
            }
            let payload_end = prefix_end.checked_add(payload_len as usize)?;
            if payload_end > footer_start {
                return None;
            }
            frames.push(RecordFrame {
                payload_start: prefix_end,
                payload_len,
                crc,
            });
            expected_offset = payload_end;
        }
        // The records must tile the region exactly up to the footer.
        if expected_offset != footer_start {
            return None;
        }
        Some(frames)
    }

    /// Sequential frame scan — the v1 path and the fallback for a
    /// damaged v2 footer. Recovers the bit-exact intact prefix and
    /// records what stopped the scan as [`MappedStore::damage`].
    /// Payload CRCs are still checked lazily at first touch.
    fn scan_records(&mut self) {
        let bytes = self.map.bytes();
        let mut pos = self.header_len;
        let mut offsets: Vec<u64> = Vec::new();
        loop {
            let record = self.frames.len() as u64;
            if pos == bytes.len() {
                if self.version >= 2 {
                    self.damage = Some(CkptError::Corrupted {
                        record,
                        detail: "index footer missing",
                    });
                }
                return;
            }
            if pos + 8 > bytes.len() {
                self.damage = Some(CkptError::Truncated {
                    record,
                    recovered: record,
                });
                return;
            }
            let payload_len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
            if self.version >= 2 && payload_len == FOOTER_MARKER {
                // Reached a footer marker with a footer that failed
                // end-anchored validation (or trailing bytes follow a
                // valid one): the prefix is intact, the index is not.
                if bytes[pos..] == encode_footer(&offsets)[..] {
                    // A byte-for-byte valid footer the end-anchored
                    // parse missed is impossible in practice; treat it
                    // as clean if it ever happens.
                    self.index_present = true;
                } else {
                    self.damage = Some(CkptError::Corrupted {
                        record,
                        detail: "index footer damaged",
                    });
                }
                return;
            }
            if payload_len > MAX_PAYLOAD {
                self.damage = Some(CkptError::Corrupted {
                    record,
                    detail: "implausible record length",
                });
                return;
            }
            if pos + 8 + payload_len as usize > bytes.len() {
                self.damage = Some(CkptError::Truncated {
                    record,
                    recovered: record,
                });
                return;
            }
            offsets.push(pos as u64);
            self.frames.push(RecordFrame {
                payload_start: pos + 8,
                payload_len,
                crc,
            });
            pos += 8 + payload_len as usize;
        }
    }

    /// The store's sampling design and benchmark identity.
    pub fn meta(&self) -> &StoreMeta {
        &self.meta
    }

    /// The warm-geometry fingerprint recorded in the store header.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The store's on-disk format version (1 = pre-index, 2 = indexed,
    /// 3 = indexed with a non-built-in frontend tag).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Intact records addressable in this store.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the store holds no intact records.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total file bytes (mapped or buffered).
    pub fn file_bytes(&self) -> u64 {
        self.map.bytes().len() as u64
    }

    /// The store header's byte length (the record region starts here).
    pub fn header_bytes(&self) -> u64 {
        self.header_len as u64
    }

    /// File offset where the intact record region ends — the index
    /// footer (v2), EOF (v1), or the first damaged byte.
    pub fn records_end(&self) -> u64 {
        match self.frames.last() {
            Some(frame) => (frame.payload_start + frame.payload_len as usize) as u64,
            None => self.header_len as u64,
        }
    }

    /// Where record `index`'s frame sits in the file, without touching
    /// (or CRC-verifying) its bytes. Inventory metadata for
    /// `smarts ckpt-info --json`.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()`.
    pub fn record_span(&self, index: usize) -> RecordSpan {
        let frame = self.frames[index];
        RecordSpan {
            offset: (frame.payload_start - 8) as u64,
            payload_bytes: frame.payload_len as u64,
            crc: frame.crc,
        }
    }

    /// Whether the file is actually memory-mapped (false on the
    /// owned-buffer fallback).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Whether record addressing came from an intact index footer
    /// (false for v1 stores and for v2 stores whose footer was damaged
    /// and recovered by scan).
    pub fn index_present(&self) -> bool {
        self.index_present
    }

    /// The damage that limits this store to a prefix, if any. Records
    /// `0..len()` are structurally intact regardless (their payload
    /// CRCs are still verified at first touch).
    pub fn damage(&self) -> Option<CkptError> {
        self.damage.as_ref().map(CkptError::replicate)
    }

    /// The still-encoded record `index`, borrowed from the mapping.
    /// The record's CRC is verified on the first touch store-wide and
    /// memoized; later touches (any cursor, any thread) skip the hash.
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupted`] on a CRC mismatch.
    ///
    /// # Panics
    ///
    /// Panics when `index >= self.len()` — addressing past the intact
    /// prefix is a caller bug, not store damage.
    pub fn record(&self, index: usize) -> Result<FlatCheckpointRef<'_>, CkptError> {
        let frame = self.frames[index];
        let payload = &self.map.bytes()
            [frame.payload_start..frame.payload_start + frame.payload_len as usize];
        if !self.checked[index].load(Ordering::Relaxed) {
            if crate::codec::crc32(payload) != frame.crc {
                return Err(CkptError::Corrupted {
                    record: index as u64,
                    detail: "CRC mismatch",
                });
            }
            self.checked[index].store(true, Ordering::Relaxed);
        }
        Ok(FlatCheckpointRef {
            payload,
            record: index as u64,
        })
    }

    /// A fresh decode cursor positioned before record 0. Cursors are
    /// cheap (they hold one rolling flat at most); give each worker
    /// its own.
    pub fn cursor(&self) -> StoreCursor<'_> {
        StoreCursor {
            store: self,
            next: 0,
            flat: None,
        }
    }

    /// Approximate resident bytes of the *decoded* store — what the
    /// eager reader or library would hold. Derived without decoding:
    /// the delta chain's flats all share the geometry-fixed section
    /// length, so this walks the chain once. Costs O(store) decode
    /// time; meant for inventory tools, not hot paths.
    ///
    /// # Errors
    ///
    /// Propagates the first record that fails CRC or decode.
    pub fn approx_decoded_bytes(&self) -> Result<u64, CkptError> {
        let mut cursor = self.cursor();
        let mut total = 0u64;
        for index in 0..self.len() {
            total += cursor.flat_at(index)?.approx_bytes();
        }
        Ok(total)
    }
}

/// A rolling decode position over a [`MappedStore`]: holds at most one
/// materialized [`FlatCheckpoint`] and advances it in place through
/// the delta chain. Sequential access is O(changed words) per step;
/// rewinding restarts from record 0 (records are chain-deltas — there
/// is no cheaper way back).
#[derive(Debug)]
pub struct StoreCursor<'a> {
    store: &'a MappedStore,
    /// Index the rolling flat will decode next; `flat` (when present)
    /// is record `next - 1`.
    next: usize,
    flat: Option<FlatCheckpoint>,
}

impl StoreCursor<'_> {
    /// The record index this cursor has decoded up to (exclusive).
    pub fn position(&self) -> usize {
        self.next
    }

    /// The decoded flat of record `index`, rolling the cursor forward
    /// (or restarting) as needed.
    ///
    /// # Errors
    ///
    /// [`CkptError::Corrupted`] when a record on the way fails its
    /// first-touch CRC or does not decode.
    ///
    /// # Panics
    ///
    /// Panics when `index >= store.len()`.
    pub fn flat_at(&mut self, index: usize) -> Result<&FlatCheckpoint, CkptError> {
        assert!(
            index < self.store.len(),
            "record {index} out of range for a store of {} records",
            self.store.len()
        );
        if self.flat.is_none() || index + 1 < self.next {
            self.next = 0;
            self.flat = None;
        }
        while self.next <= index {
            let record = self.store.record(self.next)?;
            let flat = match self.flat.take() {
                None if self.next == 0 => record.decode(None)?,
                // A mid-chain cursor whose flat was consumed by a
                // failed advance restarts from the beginning.
                None => unreachable!("cursor flat only absent at position 0"),
                Some(prev) => record.advance(prev)?,
            };
            self.flat = Some(flat);
            self.next += 1;
        }
        Ok(self.flat.as_ref().expect("advanced past index"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{CkptWriter, StoreMeta};
    use smarts_core::{SamplingParams, Warming};
    use smarts_isa::IsaId;
    use smarts_uarch::MachineConfig;

    fn meta() -> StoreMeta {
        StoreMeta {
            params: SamplingParams {
                unit_size: 500,
                detailed_warming: 1000,
                warming: Warming::Functional,
                interval: 11,
                offset: 0,
                max_units: None,
            },
            benchmark: "loopy-1".to_string(),
            scale: 0.1,
            isa: IsaId::Builtin,
        }
    }

    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("smarts-lazy-{tag}-{}", std::process::id()))
    }

    #[test]
    fn empty_store_maps_cleanly() {
        let cfg = MachineConfig::eight_way();
        let path = temp_path("empty");
        CkptWriter::create(&path, &cfg, &meta())
            .unwrap()
            .finish()
            .unwrap();
        let store = MappedStore::open(&path, &cfg).unwrap();
        assert_eq!(store.len(), 0);
        assert!(store.is_empty());
        assert!(store.index_present());
        assert!(store.damage().is_none());
        assert_eq!(store.version(), crate::FORMAT_VERSION);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cursor_panics_past_the_end() {
        let cfg = MachineConfig::eight_way();
        let path = temp_path("oob");
        CkptWriter::create(&path, &cfg, &meta())
            .unwrap()
            .finish()
            .unwrap();
        let store = MappedStore::open(&path, &cfg).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = store.cursor().flat_at(0);
        }));
        assert!(result.is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_geometry_is_rejected_at_open() {
        let cfg = MachineConfig::eight_way();
        let path = temp_path("geom");
        CkptWriter::create(&path, &cfg, &meta())
            .unwrap()
            .finish()
            .unwrap();
        let err = MappedStore::open(&path, &MachineConfig::sixteen_way()).unwrap_err();
        assert!(matches!(err, CkptError::FingerprintMismatch { .. }));
        // But the inventory path opens it fine.
        assert!(MappedStore::open_unchecked(&path).is_ok());
        std::fs::remove_file(&path).unwrap();
    }
}

//! End-to-end store tests against real warming checkpoints: bit-exact
//! round-trips, randomized corruption/truncation recovery (sequential
//! and mapped readers in lockstep), v1 compatibility, and gating
//! (version, fingerprint).

use std::fs;
use std::path::PathBuf;

use smarts_ckpt::{CkptError, CkptReader, CkptWriter, IsaId, MappedStore, StoreMeta};
use smarts_core::{SamplingParams, SmartsSim, UnitCheckpoint, Warming};
use smarts_isa::{Isa, RiscIsa};
use smarts_uarch::MachineConfig;
use smarts_workloads::{find, Benchmark, Frontend};

/// Deterministic pseudo-random stream for the corruption property tests.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "smarts-ckpt-test-{tag}-{}.ckpt",
        std::process::id()
    ))
}

fn small_bench() -> Benchmark {
    find("loopy-1").expect("suite benchmark").scaled(0.02)
}

fn small_params(bench: &Benchmark) -> SamplingParams {
    SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, 10, 0)
        .expect("valid params")
}

fn collect_checkpoints(
    sim: &SmartsSim,
    bench: &Benchmark,
    params: &SamplingParams,
) -> Vec<UnitCheckpoint> {
    let mut out = Vec::new();
    sim.stream_checkpoints(bench.load(), params, |checkpoint| {
        out.push(checkpoint);
        true
    })
    .expect("warming pass");
    out
}

fn write_store(path: &PathBuf, cfg: &MachineConfig, checkpoints: &[UnitCheckpoint]) -> StoreMeta {
    let bench = small_bench();
    let meta = StoreMeta {
        params: small_params(&bench),
        benchmark: bench.name().to_string(),
        scale: 0.02,
        isa: IsaId::Builtin,
    };
    let mut writer = CkptWriter::create(path, cfg, &meta).expect("create store");
    for checkpoint in checkpoints {
        writer.append(checkpoint).expect("append");
    }
    writer.finish().expect("finish");
    meta
}

/// Every observable word of a checkpoint, via the public state-stream
/// API — the equality notion the store must preserve exactly:
/// `(unit_start, cpu words, warm words, sorted pages)`.
type StateWords = (u64, Vec<u64>, Vec<u64>, Vec<(u64, Vec<u8>)>);

fn state_words(c: &UnitCheckpoint) -> StateWords {
    let mut cpu = Vec::new();
    c.snapshot().cpu().save_state(&mut cpu);
    let mut warm = Vec::new();
    c.warm().save_state(&mut warm);
    let pages = c
        .snapshot()
        .memory()
        .pages_sorted()
        .into_iter()
        .map(|(index, page)| (index, page.to_vec()))
        .collect();
    (c.unit_start(), cpu, warm, pages)
}

#[test]
fn store_round_trips_every_checkpoint_bit_exactly() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    assert!(originals.len() >= 8, "want a non-trivial unit count");

    let path = temp_path("roundtrip");
    let meta = write_store(&path, &cfg, &originals);

    let mut reader = CkptReader::open(&path, &cfg).expect("open store");
    assert_eq!(reader.meta(), &meta);
    let mut decoded = Vec::new();
    while let Some(next) = reader.next_checkpoint() {
        decoded.push(next.expect("intact record"));
    }
    assert_eq!(decoded.len(), originals.len());
    assert_eq!(reader.records_read(), originals.len() as u64);
    for (original, restored) in originals.iter().zip(&decoded) {
        assert_eq!(state_words(original), state_words(restored));
    }
    fs::remove_file(&path).ok();
}

#[test]
fn delta_encoding_compresses_below_resident_footprint() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let resident: u64 = originals
        .iter()
        .map(UnitCheckpoint::approx_resident_bytes)
        .sum();

    let path = temp_path("compression");
    write_store(&path, &cfg, &originals);
    let file_bytes = fs::metadata(&path).expect("store exists").len();
    assert!(
        file_bytes * 2 < resident,
        "delta encoding should at least halve the footprint: \
         {file_bytes} on disk vs {resident} resident"
    );
    fs::remove_file(&path).ok();
}

/// Decodes every addressable record of a mapped store through one
/// cursor, returning `(intact count, first failure)` — the mapped-path
/// mirror of the sequential reader loop, where the failure may also be
/// the structural damage the open itself retained.
fn mapped_intact(store: &MappedStore) -> (usize, Option<CkptError>) {
    let mut cursor = store.cursor();
    for index in 0..store.len() {
        if let Err(e) = cursor.flat_at(index) {
            return (index, Some(e));
        }
    }
    (store.len(), store.damage())
}

#[test]
fn any_flipped_record_byte_surfaces_a_typed_error() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let path = temp_path("fliprand");
    write_store(&path, &cfg, &originals);
    let pristine = fs::read(&path).expect("read store");

    let layout = MappedStore::open(&path, &cfg).expect("pristine store maps");
    let header_len = layout.header_bytes() as usize;
    let records_end = layout.records_end() as usize;
    assert!(layout.index_present() && layout.damage().is_none());
    drop(layout);
    assert!(pristine.len() > records_end, "v2 stores carry a footer");

    let mut rng = SplitMix64(0xC0FF_EE00_5EED);
    for _ in 0..40 {
        let offset = header_len + rng.below((pristine.len() - header_len) as u64) as usize;
        let bit = rng.below(8) as u32;
        let mut bytes = pristine.clone();
        bytes[offset] ^= 1 << bit;
        fs::write(&path, &bytes).expect("write corrupted copy");

        let mut reader = CkptReader::open(&path, &cfg).expect("header is intact");
        let mut intact = 0usize;
        let mut failure = None;
        while let Some(next) = reader.next_checkpoint() {
            match next {
                Ok(_) => intact += 1,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // A single flipped bit can never decode cleanly: the per-record
        // CRC covers the payload, the length/CRC prefix fields fail as
        // implausible lengths, tears, or CRC mismatches, and the index
        // footer is covered by its own CRC plus frame cross-validation.
        let failure = failure
            .unwrap_or_else(|| panic!("flip at byte {offset} bit {bit} was swallowed silently"));
        assert!(
            matches!(
                failure,
                CkptError::Corrupted { .. } | CkptError::Truncated { .. }
            ),
            "unexpected error class for flip at byte {offset}: {failure:?}"
        );
        if offset < records_end {
            assert!(
                intact < originals.len(),
                "record damage must cost at least one record"
            );
        } else {
            // A footer flip damages only the index: every record stays
            // replayable, the damage is still surfaced.
            assert_eq!(intact, originals.len(), "footer flip at byte {offset}");
        }
        // Errors are terminal: the stream stays ended.
        assert!(reader.next_checkpoint().is_none());

        // The mapped reader agrees record-for-record: same intact
        // count, and the damage never goes unreported.
        let store = MappedStore::open(&path, &cfg).expect("header is intact");
        let (lazy_intact, lazy_failure) = mapped_intact(&store);
        assert_eq!(lazy_intact, intact, "flip at byte {offset} bit {bit}");
        assert!(
            lazy_failure.is_some(),
            "mapped store swallowed the flip at byte {offset} bit {bit}"
        );
    }
    fs::remove_file(&path).ok();
}

#[test]
fn truncation_recovers_the_intact_prefix() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let path = temp_path("truncrand");
    write_store(&path, &cfg, &originals);
    let pristine = fs::read(&path).expect("read store");
    let reference: Vec<_> = originals.iter().map(state_words).collect();

    let layout = MappedStore::open(&path, &cfg).expect("pristine store maps");
    let header_len = layout.header_bytes() as usize;
    let records_end = layout.records_end() as usize;
    drop(layout);

    // Random cuts, plus pinned ones for the boundary cases the random
    // draw may miss: mid-record, exactly at the record/footer seam
    // (footer fully missing), and mid-footer.
    let mut rng = SplitMix64(0x7A11_FEED);
    let mut cuts: Vec<usize> = (0..25)
        .map(|_| header_len + rng.below((pristine.len() - header_len) as u64) as usize)
        .collect();
    cuts.push(header_len + (records_end - header_len) / 2); // mid-record
    cuts.push(records_end); // footer missing entirely
    cuts.push(records_end + 5); // mid-footer, inside the count field
    cuts.push(pristine.len() - 3); // mid-footer, inside the magic

    for cut in cuts {
        fs::write(&path, &pristine[..cut]).expect("write truncated copy");

        let mut reader = CkptReader::open(&path, &cfg).expect("header is intact");
        let mut intact = 0usize;
        let mut tear = None;
        while let Some(next) = reader.next_checkpoint() {
            match next {
                Ok(checkpoint) => {
                    // The prefix is not merely decodable — it is the
                    // original data, bit for bit.
                    assert_eq!(state_words(&checkpoint), reference[intact]);
                    intact += 1;
                }
                Err(e) => {
                    tear = Some(e);
                    break;
                }
            }
        }
        if cut < records_end {
            assert!(intact < originals.len(), "cut at byte {cut}");
        } else {
            // Cutting the footer (or just the footer) loses no record.
            assert_eq!(intact, originals.len(), "cut at byte {cut}");
        }
        // Any cut damages a v2 store — at minimum its index footer —
        // and the damage always carries the intact count.
        match tear {
            Some(CkptError::Truncated { record, recovered }) => {
                assert_eq!(record, intact as u64);
                assert_eq!(recovered, intact as u64);
            }
            Some(CkptError::Corrupted { record, .. }) => {
                assert_eq!(record, intact as u64);
            }
            Some(other) => panic!("truncation surfaced as {other:?}"),
            None => panic!("cut at byte {cut} was swallowed silently"),
        }

        // The mapped reader recovers the same bit-exact prefix and
        // surfaces the same damage class.
        let store = MappedStore::open(&path, &cfg).expect("header is intact");
        let (lazy_intact, lazy_failure) = mapped_intact(&store);
        assert_eq!(lazy_intact, intact, "cut at byte {cut}");
        assert!(lazy_failure.is_some(), "cut at byte {cut}");
        let mut cursor = store.cursor();
        for (index, expected) in reference.iter().take(lazy_intact).enumerate() {
            let rebuilt = cursor
                .flat_at(index)
                .expect("intact record")
                .rebuild(&cfg)
                .expect("rebuilds");
            assert_eq!(&state_words(&rebuilt), expected);
        }
    }
    fs::remove_file(&path).ok();
}

/// Rewrites a pristine v2 store as its byte-identical v1 equivalent:
/// version field set to 1, header CRC recomputed, index footer
/// stripped. This is exactly what a pre-index build would have
/// written, so it pins backward compatibility.
fn make_v1(pristine: &[u8], header_len: usize, records_end: usize) -> Vec<u8> {
    let mut bytes = pristine[..records_end].to_vec();
    bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
    let crc = {
        // IEEE CRC-32, matching the store codec.
        let mut c = 0xFFFF_FFFFu32;
        for &b in &bytes[..header_len - 4] {
            c ^= b as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
        }
        !c
    };
    bytes[header_len - 4..header_len].copy_from_slice(&crc.to_le_bytes());
    bytes
}

#[test]
fn v1_stores_without_a_footer_still_read_cleanly() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let path = temp_path("v1compat");
    write_store(&path, &cfg, &originals);
    let pristine = fs::read(&path).expect("read store");
    let layout = MappedStore::open(&path, &cfg).expect("pristine store maps");
    let (header_len, records_end) = (
        layout.header_bytes() as usize,
        layout.records_end() as usize,
    );
    drop(layout);

    fs::write(&path, make_v1(&pristine, header_len, records_end)).expect("write v1 store");

    // Sequential reader: every record, clean EOF, no footer expected.
    let mut reader = CkptReader::open(&path, &cfg).expect("v1 opens");
    let mut intact = 0usize;
    while let Some(next) = reader.next_checkpoint() {
        let checkpoint = next.expect("v1 record is intact");
        assert_eq!(state_words(&checkpoint), state_words(&originals[intact]));
        intact += 1;
    }
    assert_eq!(intact, originals.len());

    // Mapped reader: index-less scan, no damage, same records.
    let store = MappedStore::open(&path, &cfg).expect("v1 maps");
    assert_eq!(store.version(), 1);
    assert!(!store.index_present());
    assert!(store.damage().is_none());
    let (lazy_intact, lazy_failure) = mapped_intact(&store);
    assert_eq!(lazy_intact, originals.len());
    assert!(lazy_failure.is_none());
    fs::remove_file(&path).ok();
}

#[test]
fn mapped_and_buffered_stores_decode_identically_across_threads() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let path = temp_path("sharedmap");
    write_store(&path, &cfg, &originals);
    let reference: Vec<_> = originals.iter().map(state_words).collect();

    for buffered in [false, true] {
        let store = if buffered {
            MappedStore::open_buffered(&path, &cfg).expect("buffered open")
        } else {
            MappedStore::open(&path, &cfg).expect("mapped open")
        };
        // Concurrent readers share one mapping and one CRC memo; each
        // cursor decodes an interleaved slice of the records.
        std::thread::scope(|scope| {
            for worker in 0..4usize {
                let store = &store;
                let reference = &reference;
                let cfg = &cfg;
                scope.spawn(move || {
                    let mut cursor = store.cursor();
                    for index in (worker..store.len()).step_by(4) {
                        let rebuilt = cursor
                            .flat_at(index)
                            .expect("record decodes")
                            .rebuild(cfg)
                            .expect("record rebuilds");
                        assert_eq!(state_words(&rebuilt), reference[index]);
                    }
                });
            }
        });
    }
    fs::remove_file(&path).ok();
}

#[test]
fn incompatible_stores_are_rejected_before_replay() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let path = temp_path("gating");
    write_store(&path, &cfg, &originals[..2]);
    let pristine = fs::read(&path).expect("read store");

    // Bad magic: first byte damaged.
    let mut bytes = pristine.clone();
    bytes[0] ^= 0xFF;
    fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        CkptReader::open(&path, &cfg),
        Err(CkptError::BadMagic)
    ));

    // Future format version (byte 8 is the version LSB; the version is
    // checked before the header CRC so old readers fail informatively).
    let mut bytes = pristine.clone();
    bytes[8] = 0x2A;
    fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        CkptReader::open(&path, &cfg),
        Err(CkptError::UnsupportedVersion(0x2A))
    ));

    // Header torn mid-way.
    fs::write(&path, &pristine[..20]).expect("write");
    assert!(matches!(
        CkptReader::open(&path, &cfg),
        Err(CkptError::HeaderCorrupted)
    ));

    // Warm-geometry change: fingerprint rejects the store.
    fs::write(&path, &pristine).expect("write");
    let mut bigger_l2 = cfg.clone();
    bigger_l2.l2.size_bytes *= 2;
    assert!(matches!(
        CkptReader::open(&path, &bigger_l2),
        Err(CkptError::FingerprintMismatch { .. })
    ));

    // Pipeline-core change: same warm geometry, so the store opens and
    // replays — the whole point of warm-once/replay-many.
    let mut narrow = cfg.clone();
    narrow.issue_width = 2;
    narrow.fetch_width = 2;
    narrow.decode_width = 2;
    narrow.commit_width = 2;
    narrow.ruu_size = 32;
    let mut reader = CkptReader::open(&path, &narrow).expect("compatible core variant");
    assert!(reader.next_checkpoint().expect("record").is_ok());

    fs::remove_file(&path).ok();
}

#[test]
fn frontend_mismatch_is_typed_on_both_ends() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let path = temp_path("isamismatch");

    // Writer side: a store declared for the RISC frontend refuses
    // built-in checkpoints before writing a byte of the record.
    let meta = StoreMeta {
        params,
        benchmark: bench.name().to_string(),
        scale: 0.02,
        isa: IsaId::Risc,
    };
    let mut writer = CkptWriter::create(&path, &cfg, &meta).expect("create store");
    let err = writer.append(&originals[0]).expect_err("wrong frontend");
    assert!(matches!(
        err,
        CkptError::IsaMismatch {
            expected: IsaId::Builtin,
            found: IsaId::Risc,
        }
    ));
    writer.finish().expect("finish empty store");

    // Reader side: a built-in store read under the RISC frontend
    // surfaces the mismatch before any record is decoded.
    write_store(&path, &cfg, &originals);
    let mut reader = CkptReader::open(&path, &cfg).expect("open store");
    match reader.next_checkpoint_isa::<RiscIsa>() {
        Some(Err(CkptError::IsaMismatch { expected, found })) => {
            assert_eq!(expected, IsaId::Risc);
            assert_eq!(found, IsaId::Builtin);
        }
        other => panic!("expected a typed ISA mismatch, got {other:?}"),
    }
    // The mismatch is terminal, like every other reader error.
    assert!(reader.next_checkpoint_isa::<RiscIsa>().is_none());
    fs::remove_file(&path).ok();
}

#[test]
fn risc_stores_round_trip_under_the_v3_format() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let loaded = RiscIsa::resolve(bench.name(), 0.02).expect("risc-encodable benchmark");
    let mut originals = Vec::new();
    sim.stream_checkpoints(loaded, &params, |checkpoint| {
        originals.push(checkpoint);
        true
    })
    .expect("risc warming pass");
    assert!(originals.len() >= 8, "want a non-trivial unit count");

    let path = temp_path("riscroundtrip");
    let meta = StoreMeta {
        params,
        benchmark: bench.name().to_string(),
        scale: 0.02,
        isa: IsaId::Risc,
    };
    let mut writer = CkptWriter::create(&path, &cfg, &meta).expect("create store");
    for checkpoint in &originals {
        writer.append(checkpoint).expect("append");
    }
    writer.finish().expect("finish");

    let (_, peeked) = smarts_ckpt::read_store_meta(&path).expect("peek header");
    assert_eq!(peeked.isa, IsaId::Risc);

    let mut reader = CkptReader::open(&path, &cfg).expect("open store");
    let mut restored = Vec::new();
    while let Some(next) = reader.next_checkpoint_isa::<RiscIsa>() {
        restored.push(next.expect("intact record"));
    }
    assert_eq!(restored.len(), originals.len());
    for (original, rebuilt) in originals.iter().zip(&restored) {
        assert_eq!(original.unit_start(), rebuilt.unit_start());
        let mut want = Vec::new();
        RiscIsa::save_state(original.snapshot().cpu(), &mut want);
        let mut got = Vec::new();
        RiscIsa::save_state(rebuilt.snapshot().cpu(), &mut got);
        assert_eq!(want, got, "cpu words");
        let mut want = Vec::new();
        original.warm().save_state(&mut want);
        let mut got = Vec::new();
        rebuilt.warm().save_state(&mut got);
        assert_eq!(want, got, "warm words");
        assert_eq!(
            original.snapshot().memory().pages_sorted(),
            rebuilt.snapshot().memory().pages_sorted()
        );
    }
    fs::remove_file(&path).ok();
}

//! End-to-end store tests against real warming checkpoints: bit-exact
//! round-trips, randomized corruption/truncation recovery, and
//! compatibility gating (version, fingerprint).

use std::fs;
use std::path::PathBuf;

use smarts_ckpt::{CkptError, CkptReader, CkptWriter, StoreMeta};
use smarts_core::{SamplingParams, SmartsSim, UnitCheckpoint, Warming};
use smarts_uarch::MachineConfig;
use smarts_workloads::{find, Benchmark};

/// Deterministic pseudo-random stream for the corruption property tests.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "smarts-ckpt-test-{tag}-{}.ckpt",
        std::process::id()
    ))
}

fn small_bench() -> Benchmark {
    find("loopy-1").expect("suite benchmark").scaled(0.02)
}

fn small_params(bench: &Benchmark) -> SamplingParams {
    SamplingParams::for_sample_size(bench.approx_len(), 1000, 2000, Warming::Functional, 10, 0)
        .expect("valid params")
}

fn collect_checkpoints(
    sim: &SmartsSim,
    bench: &Benchmark,
    params: &SamplingParams,
) -> Vec<UnitCheckpoint> {
    let mut out = Vec::new();
    sim.stream_checkpoints(bench.load(), params, |checkpoint| {
        out.push(checkpoint);
        true
    })
    .expect("warming pass");
    out
}

fn write_store(path: &PathBuf, cfg: &MachineConfig, checkpoints: &[UnitCheckpoint]) -> StoreMeta {
    let bench = small_bench();
    let meta = StoreMeta {
        params: small_params(&bench),
        benchmark: bench.name().to_string(),
        scale: 0.02,
    };
    let mut writer = CkptWriter::create(path, cfg, &meta).expect("create store");
    for checkpoint in checkpoints {
        writer.append(checkpoint).expect("append");
    }
    writer.finish().expect("finish");
    meta
}

/// Every observable word of a checkpoint, via the public state-stream
/// API — the equality notion the store must preserve exactly:
/// `(unit_start, cpu words, warm words, sorted pages)`.
type StateWords = (u64, Vec<u64>, Vec<u64>, Vec<(u64, Vec<u8>)>);

fn state_words(c: &UnitCheckpoint) -> StateWords {
    let mut cpu = Vec::new();
    c.snapshot().cpu().save_state(&mut cpu);
    let mut warm = Vec::new();
    c.warm().save_state(&mut warm);
    let pages = c
        .snapshot()
        .memory()
        .pages_sorted()
        .into_iter()
        .map(|(index, page)| (index, page.to_vec()))
        .collect();
    (c.unit_start(), cpu, warm, pages)
}

#[test]
fn store_round_trips_every_checkpoint_bit_exactly() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    assert!(originals.len() >= 8, "want a non-trivial unit count");

    let path = temp_path("roundtrip");
    let meta = write_store(&path, &cfg, &originals);

    let mut reader = CkptReader::open(&path, &cfg).expect("open store");
    assert_eq!(reader.meta(), &meta);
    let mut decoded = Vec::new();
    while let Some(next) = reader.next_checkpoint() {
        decoded.push(next.expect("intact record"));
    }
    assert_eq!(decoded.len(), originals.len());
    assert_eq!(reader.records_read(), originals.len() as u64);
    for (original, restored) in originals.iter().zip(&decoded) {
        assert_eq!(state_words(original), state_words(restored));
    }
    fs::remove_file(&path).ok();
}

#[test]
fn delta_encoding_compresses_below_resident_footprint() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let resident: u64 = originals
        .iter()
        .map(UnitCheckpoint::approx_resident_bytes)
        .sum();

    let path = temp_path("compression");
    write_store(&path, &cfg, &originals);
    let file_bytes = fs::metadata(&path).expect("store exists").len();
    assert!(
        file_bytes * 2 < resident,
        "delta encoding should at least halve the footprint: \
         {file_bytes} on disk vs {resident} resident"
    );
    fs::remove_file(&path).ok();
}

#[test]
fn any_flipped_record_byte_surfaces_a_typed_error() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let path = temp_path("fliprand");
    write_store(&path, &cfg, &originals);
    let pristine = fs::read(&path).expect("read store");

    // The header's extent: a store with zero records is header-only.
    let empty = temp_path("fliprand-header");
    let summary = CkptWriter::create(
        &empty,
        &cfg,
        &StoreMeta {
            params,
            benchmark: bench.name().to_string(),
            scale: 0.02,
        },
    )
    .expect("create")
    .finish()
    .expect("finish");
    fs::remove_file(&empty).ok();
    let header_len = summary.bytes as usize;
    assert!(pristine.len() > header_len);

    let mut rng = SplitMix64(0xC0FF_EE00_5EED);
    for _ in 0..40 {
        let offset = header_len + rng.below((pristine.len() - header_len) as u64) as usize;
        let bit = rng.below(8) as u32;
        let mut bytes = pristine.clone();
        bytes[offset] ^= 1 << bit;
        fs::write(&path, &bytes).expect("write corrupted copy");

        let mut reader = CkptReader::open(&path, &cfg).expect("header is intact");
        let mut intact = 0usize;
        let mut failure = None;
        while let Some(next) = reader.next_checkpoint() {
            match next {
                Ok(_) => intact += 1,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        // A single flipped bit can never decode cleanly: the per-record
        // CRC covers the payload, and the length/CRC prefix fields fail
        // as implausible lengths, tears, or CRC mismatches.
        let failure = failure
            .unwrap_or_else(|| panic!("flip at byte {offset} bit {bit} was swallowed silently"));
        assert!(
            matches!(
                failure,
                CkptError::Corrupted { .. } | CkptError::Truncated { .. }
            ),
            "unexpected error class for flip at byte {offset}: {failure:?}"
        );
        assert!(
            intact < originals.len(),
            "damage must cost at least one record"
        );
        // Errors are terminal: the stream stays ended.
        assert!(reader.next_checkpoint().is_none());
    }
    fs::remove_file(&path).ok();
}

#[test]
fn truncation_recovers_the_intact_prefix() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let path = temp_path("truncrand");
    write_store(&path, &cfg, &originals);
    let pristine = fs::read(&path).expect("read store");
    let reference: Vec<_> = originals.iter().map(state_words).collect();

    let empty = temp_path("truncrand-header");
    let header_len = CkptWriter::create(
        &empty,
        &cfg,
        &StoreMeta {
            params,
            benchmark: bench.name().to_string(),
            scale: 0.02,
        },
    )
    .expect("create")
    .finish()
    .expect("finish")
    .bytes as usize;
    fs::remove_file(&empty).ok();

    let mut rng = SplitMix64(0x7A11_FEED);
    for _ in 0..25 {
        let cut = header_len + rng.below((pristine.len() - header_len) as u64) as usize;
        fs::write(&path, &pristine[..cut]).expect("write truncated copy");

        let mut reader = CkptReader::open(&path, &cfg).expect("header is intact");
        let mut intact = 0usize;
        let mut tear = None;
        while let Some(next) = reader.next_checkpoint() {
            match next {
                Ok(checkpoint) => {
                    // The prefix is not merely decodable — it is the
                    // original data, bit for bit.
                    assert_eq!(state_words(&checkpoint), reference[intact]);
                    intact += 1;
                }
                Err(e) => {
                    tear = Some(e);
                    break;
                }
            }
        }
        assert!(intact < originals.len());
        match tear {
            // A cut on a record boundary reads as a short, clean store.
            None => {}
            Some(CkptError::Truncated { record, recovered }) => {
                assert_eq!(record, intact as u64);
                assert_eq!(recovered, intact as u64);
            }
            Some(other) => panic!("truncation surfaced as {other:?}"),
        }
    }
    fs::remove_file(&path).ok();
}

#[test]
fn incompatible_stores_are_rejected_before_replay() {
    let cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(cfg.clone());
    let bench = small_bench();
    let params = small_params(&bench);
    let originals = collect_checkpoints(&sim, &bench, &params);
    let path = temp_path("gating");
    write_store(&path, &cfg, &originals[..2]);
    let pristine = fs::read(&path).expect("read store");

    // Bad magic: first byte damaged.
    let mut bytes = pristine.clone();
    bytes[0] ^= 0xFF;
    fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        CkptReader::open(&path, &cfg),
        Err(CkptError::BadMagic)
    ));

    // Future format version (byte 8 is the version LSB; the version is
    // checked before the header CRC so old readers fail informatively).
    let mut bytes = pristine.clone();
    bytes[8] = 0x2A;
    fs::write(&path, &bytes).expect("write");
    assert!(matches!(
        CkptReader::open(&path, &cfg),
        Err(CkptError::UnsupportedVersion(0x2A))
    ));

    // Header torn mid-way.
    fs::write(&path, &pristine[..20]).expect("write");
    assert!(matches!(
        CkptReader::open(&path, &cfg),
        Err(CkptError::HeaderCorrupted)
    ));

    // Warm-geometry change: fingerprint rejects the store.
    fs::write(&path, &pristine).expect("write");
    let mut bigger_l2 = cfg.clone();
    bigger_l2.l2.size_bytes *= 2;
    assert!(matches!(
        CkptReader::open(&path, &bigger_l2),
        Err(CkptError::FingerprintMismatch { .. })
    ));

    // Pipeline-core change: same warm geometry, so the store opens and
    // replays — the whole point of warm-once/replay-many.
    let mut narrow = cfg.clone();
    narrow.issue_width = 2;
    narrow.fetch_width = 2;
    narrow.decode_width = 2;
    narrow.commit_width = 2;
    narrow.ruu_size = 32;
    let mut reader = CkptReader::open(&path, &narrow).expect("compatible core variant");
    assert!(reader.next_checkpoint().expect("record").is_ok());

    fs::remove_file(&path).ok();
}

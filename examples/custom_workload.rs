//! Bring your own workload: assemble a custom kernel with the `Asm`
//! builder, run it through the detailed pipeline directly, and inspect
//! microarchitectural behaviour (CPI, cache misses, branch prediction).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use smarts::isa::IsaError;
use smarts::prelude::*;

/// A histogram kernel: random increments scattered over a table — a mix
/// of hash-like loads, read-modify-write stores, and loop control.
fn histogram_kernel(buckets: u64, ops: i64) -> Result<Program, IsaError> {
    let table: i64 = 0x2000_0000;
    let mut a = Asm::new();
    a.li(reg::S0, 0x1234_5678); // LCG state
    a.li(reg::S1, table);
    a.li(reg::S2, (buckets - 1) as i64); // power-of-two mask
    a.li(reg::S3, 6364136223846793005);
    a.li(reg::S4, 1442695040888963407);
    a.li(reg::T1, ops);
    let top = a.label();
    a.bind(top)?;
    a.mul(reg::S0, reg::S0, reg::S3);
    a.add(reg::S0, reg::S0, reg::S4);
    a.srli(reg::T0, reg::S0, 20);
    a.and(reg::T0, reg::T0, reg::S2);
    a.slli(reg::T0, reg::T0, 3);
    a.add(reg::T0, reg::T0, reg::S1);
    a.ld(reg::T2, reg::T0, 0); // load bucket
    a.addi(reg::T2, reg::T2, 1); // increment
    a.sd(reg::T2, reg::T0, 0); // store back
    a.addi(reg::T1, reg::T1, -1);
    a.bnez(reg::T1, top);
    a.halt();
    a.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = MachineConfig::eight_way();
    for (label, buckets) in [
        ("L1-resident (16 KiB)", 2048u64),
        ("L2-busting (32 MiB)", 1 << 22),
    ] {
        let program = histogram_kernel(buckets, 200_000)?;
        let mut cpu = Cpu::new();
        let mut mem = Memory::new();
        let mut warm = WarmState::new(&cfg);
        let mut pipeline = Pipeline::new(&cfg);
        let mut trace = move || {
            if cpu.halted() {
                None
            } else {
                cpu.step(&program, &mut mem).ok()
            }
        };
        let m = pipeline.run(&mut warm, &mut trace, u64::MAX, true);

        println!("{label}:");
        println!("  instructions  {:>12}", m.instructions);
        println!("  cycles        {:>12}", m.cycles);
        println!("  CPI           {:>12.3}", m.cpi());
        println!(
            "  L1D miss rate {:>11.2}%   L2 miss rate {:>6.2}%",
            warm.hierarchy.l1d().miss_ratio() * 100.0,
            warm.hierarchy.l2().miss_ratio() * 100.0,
        );
        println!(
            "  branch mispredict rate {:>5.2}%",
            warm.bpred.mispredict_ratio() * 100.0
        );
        println!(
            "  memory accesses {:>10}   (energy: {:.1} nJ/instruction)",
            m.counters.mem_accesses,
            EnergyModel::eight_way().energy_per_instruction(&m.counters, m.cycles),
        );
    }
    Ok(())
}

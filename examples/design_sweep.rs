//! Checkpointed design-space exploration: build the sampling checkpoints
//! once, then sweep pipeline parameters with *zero* fast-forwarding per
//! point — the TurboSMARTS workflow the paper's conclusion anticipates
//! ("designers should focus on techniques to speed up fast-forwarding
//! and functional warming, because these ultimately determine sampling
//! simulation time").
//!
//! Sweeps the out-of-order window (RUU/LSQ) of the 8-way machine and
//! prints CPI with confidence for each point, plus the amortization
//! arithmetic.
//!
//! ```sh
//! cargo run --release --example design_sweep
//! ```

use smarts::core::compare_machines;
use smarts::prelude::*;

fn main() -> Result<(), SmartsError> {
    let base_cfg = MachineConfig::eight_way();
    let sim = SmartsSim::new(base_cfg.clone());
    let bench = find("hashp-2").expect("suite benchmark exists").scaled(0.5);
    let params =
        SamplingParams::paper_defaults(&base_cfg, bench.approx_len(), 40)?.with_offset(1)?;

    println!("building checkpoint library for {bench} ...");
    let library = sim.build_library(&bench, &params)?;
    println!(
        "  {} checkpoints in {:.2?} (one-time cost)\n",
        library.len(),
        library.build_wall()
    );

    println!(
        "{:>12} {:>10} {:>10} {:>12}",
        "RUU/LSQ", "CPI", "±99.7%", "replay time"
    );
    let conf = Confidence::THREE_SIGMA;
    let mut total_replay = std::time::Duration::ZERO;
    for (ruu, lsq) in [(16u32, 8u32), (32, 16), (64, 32), (128, 64), (256, 128)] {
        let mut cfg = base_cfg.clone();
        cfg.ruu_size = ruu;
        cfg.lsq_size = lsq;
        let point = SmartsSim::new(cfg);
        let report = point.sample_library(&library)?;
        total_replay += report.wall_detailed;
        println!(
            "{:>9}/{:<3} {:>10.3} {:>9.1}% {:>12.2?}",
            ruu,
            lsq,
            report.cpi().mean(),
            report.cpi().achieved_epsilon(conf)? * 100.0,
            report.wall_detailed,
        );
    }
    println!(
        "\n5-point sweep: {:.2?} of replay vs {:.2?} per point with fast-forwarding",
        total_replay,
        library.build_wall() + total_replay / 5,
    );

    // The same question asked as a paired comparison: is the 64-entry
    // window significantly worse than the 128-entry baseline?
    let mut small = base_cfg.clone();
    small.ruu_size = 64;
    small.lsq_size = 32;
    let cmp = compare_machines(&sim, &SmartsSim::new(small), &bench, &params)?;
    println!(
        "\npaired check (128→64 RUU): ΔCPI = {:+.4} ± {:.4}, significant: {}, pairing gain {:.1}x",
        cmp.cpi_delta(),
        cmp.delta_half_width(conf)?,
        cmp.is_significant(conf)?,
        cmp.pairing_gain(),
    );
    Ok(())
}

//! Quickstart: estimate a benchmark's CPI and EPI with SMARTS sampling
//! and compare against full detailed simulation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smarts::prelude::*;

fn main() -> Result<(), SmartsError> {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let bench = find("hashp-2").expect("suite benchmark exists").scaled(0.5);
    println!("benchmark: {bench}");

    // SMARTS sampling at the paper's operating point: U = 1000, W = 2000,
    // functional warming, systematic sampling.
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), 50)?;
    let report = sim.sample(&bench, &params)?;
    let cpi = report.cpi();
    let epi = report.epi();
    let conf = Confidence::THREE_SIGMA;
    println!(
        "SMARTS:    CPI = {:.4} ± {:.2}%   EPI = {:.2} nJ ± {:.2}%   (99.7% confidence)",
        cpi.mean(),
        cpi.achieved_epsilon(conf)? * 100.0,
        epi.mean(),
        epi.achieved_epsilon(conf)? * 100.0,
    );
    println!(
        "           measured {} units of {} instructions = {:.3}% of the stream",
        report.sample_size(),
        params.unit_size,
        report.instructions.detailed_fraction() * 100.0,
    );

    // Ground truth: simulate every instruction in detail.
    let reference = sim.reference(&bench, 1000);
    println!(
        "reference: CPI = {:.4}          EPI = {:.2} nJ",
        reference.cpi, reference.epi
    );
    println!(
        "actual error: CPI {:+.2}%, EPI {:+.2}%",
        (cpi.mean() - reference.cpi) / reference.cpi * 100.0,
        (epi.mean() - reference.epi) / reference.epi * 100.0,
    );
    println!(
        "wall-clock: SMARTS {:.2?} vs full detail {:.2?} ({:.1}x speedup)",
        report.wall_total(),
        reference.wall,
        reference.wall.as_secs_f64() / report.wall_total().as_secs_f64(),
    );
    Ok(())
}

//! Regenerates `tests/golden_sample_reports.txt`: one line per suite
//! benchmark with a bit-exact fingerprint of its `SampleReport` under the
//! paper's recommended sampling design.
//!
//! The golden file is the anchor of the warm-state equivalence suite
//! (`tests/golden_warm.rs`): any change to cache/TLB/predictor layout or
//! to the warming hot loop must reproduce these fingerprints exactly,
//! because warmed state — and therefore every measured cycle count — is
//! required to be bit-identical across layout changes. Run this only when
//! *intentionally* changing simulated behaviour:
//!
//! ```text
//! cargo run --release --example gen_golden_warm > tests/golden_sample_reports.txt
//! ```

use smarts::prelude::*;

fn main() {
    println!("# benchmark n cpi_mean_bits cpi_cv_bits epi_mean_bits unit_cycles ff dw m");
    for bench in smarts_workloads::suite() {
        let bench = bench.scaled(0.05);
        let sim = SmartsSim::new(MachineConfig::eight_way());
        let params = SamplingParams::for_sample_size(
            bench.approx_len(),
            1000,
            2000,
            Warming::Functional,
            10,
            0,
        )
        .expect("valid sampling parameters");
        let report = sim.sample(&bench, &params).expect("sampling run");
        let unit_cycles: u64 = report.units.iter().map(|u| u.cycles).sum();
        println!(
            "{} {} {} {} {} {} {} {} {}",
            bench.name(),
            report.sample_size(),
            report.cpi().mean().to_bits(),
            report.cpi().coefficient_of_variation().to_bits(),
            report.epi().mean().to_bits(),
            unit_cycles,
            report.instructions.fast_forwarded,
            report.instructions.detailed_warmed,
            report.instructions.measured,
        );
    }
}

//! Design study: the workflow SMARTS was built for — comparing two
//! microarchitectures over a whole benchmark suite in minutes instead of
//! days, with quantified confidence on every number.
//!
//! Evaluates the Table 3 8-way and 16-way machines over the full suite
//! and reports per-benchmark CPI with confidence intervals plus the
//! 16-way speedup.
//!
//! ```sh
//! cargo run --release --example design_study
//! ```

use smarts::prelude::*;

fn main() -> Result<(), SmartsError> {
    let scale = 0.3; // keep the example snappy; raise for tighter intervals
    let n = 40;
    let conf = Confidence::THREE_SIGMA;

    let sims = [
        SmartsSim::new(MachineConfig::eight_way()),
        SmartsSim::new(MachineConfig::sixteen_way()),
    ];

    println!(
        "{:<12} {:>10} {:>8} {:>10} {:>8} {:>9}",
        "benchmark", "8-way CPI", "±%", "16-way CPI", "±%", "speedup"
    );
    for bench in scaled_suite(scale) {
        let mut cpis = [0.0f64; 2];
        let mut epsilons = [0.0f64; 2];
        for (i, sim) in sims.iter().enumerate() {
            let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), n)?;
            let report = sim.sample(&bench, &params)?;
            cpis[i] = report.cpi().mean();
            epsilons[i] = report.cpi().achieved_epsilon(conf)? * 100.0;
        }
        println!(
            "{:<12} {:>10.3} {:>7.1}% {:>10.3} {:>7.1}% {:>8.2}x",
            bench.name(),
            cpis[0],
            epsilons[0],
            cpis[1],
            epsilons[1],
            cpis[0] / cpis[1],
        );
    }
    println!("\n(±% = 99.7%-confidence interval half-width from the measured V̂ per run)");
    Ok(())
}

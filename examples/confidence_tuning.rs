//! The two-step confidence procedure of Section 5.1, end to end.
//!
//! Starts with a deliberately small `n_init`, checks the achieved
//! confidence interval against a ±3% target, and — when the interval is
//! too wide — reruns with the tuned `n = (z·V̂/ε)²`, exactly as the paper
//! prescribes for benchmarks like `ammp`/`vpr`/`gcc-2` in Figure 6.
//!
//! ```sh
//! cargo run --release --example confidence_tuning
//! ```

use smarts::prelude::*;

fn main() -> Result<(), SmartsError> {
    let sim = SmartsSim::new(MachineConfig::eight_way());
    let conf = Confidence::THREE_SIGMA;
    let epsilon = 0.03;

    // `phased-2` is our high-variance stress case (the ammp/vpr analogue):
    // long alternating locality phases make per-unit CPI vary wildly.
    let bench = find("phased-2").expect("suite benchmark exists");
    println!("benchmark: {bench}");

    let n_init = 15;
    let params = SamplingParams::paper_defaults(sim.config(), bench.approx_len(), n_init)?;
    let outcome = sim.sample_two_step(&bench, &params, epsilon, conf)?;

    let first = &outcome.initial;
    println!(
        "step 1: n_init = {:>5}  CPI = {:.3}  V̂ = {:.3}  interval = ±{:.1}%",
        first.sample_size(),
        first.cpi().mean(),
        first.cpi().coefficient_of_variation(),
        first.cpi().achieved_epsilon(conf)? * 100.0,
    );

    match &outcome.tuned {
        None => println!(
            "        target of ±{:.0}% met on the first run",
            epsilon * 100.0
        ),
        Some(tuned) => {
            println!(
                "step 2: n_tuned = {:>4}  CPI = {:.3}  V̂ = {:.3}  interval = ±{:.1}%",
                tuned.sample_size(),
                tuned.cpi().mean(),
                tuned.cpi().coefficient_of_variation(),
                tuned.cpi().achieved_epsilon(conf)? * 100.0,
            );
        }
    }

    // Verify against ground truth.
    let reference = sim.reference(&bench, 1000);
    let best = outcome.best();
    println!(
        "truth:  CPI = {:.3}  → actual error {:+.2}% (predicted interval ±{:.1}%)",
        reference.cpi,
        (best.cpi().mean() - reference.cpi) / reference.cpi * 100.0,
        best.cpi().achieved_epsilon(conf)? * 100.0,
    );
    Ok(())
}
